// Ablation: capacity-aware WAN offload (DESIGN §14).
//
// Drives the metro traffic matrix at an offered load that pushes the
// long-haul leased circuits past the offload threshold at the diurnal peak,
// then lets traffic::OffloadPolicy move whole conferencing flows onto
// Internet transit wherever the measured transit-path quality clears the
// QoE floor.  The bench quantifies the trade the policy makes:
//
//   - wan_bytes_saved — leased-circuit bytes kept off the long-hauls over
//     the accounting window;
//   - QoE before/after — demand-weighted expected loss and RTT over every
//     backbone cell, with moved flows charged the *measured* Internet-path
//     quality instead of the (now cooler) backbone path.
//
// Everything is deterministic for a given seed: the matrix build is
// chunk-sharded with fixed substreams, assignment walks cells in fixed
// order, and each demand cell's Internet probe runs on its own derived RNG.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <utility>
#include <vector>

#include "bench/bench_common.hpp"
#include "measure/prober.hpp"
#include "sim/path_model.hpp"
#include "sim/time.hpp"
#include "traffic/assignment.hpp"
#include "traffic/matrix.hpp"
#include "traffic/offload.hpp"
#include "util/table.hpp"

using namespace vns;

namespace {

/// Demand-weighted QoE of the whole backbone at time t under a given load
/// snapshot, with per-cell overrides for flows moved to the Internet.
struct QoeSummary {
  double demand_mbps = 0.0;
  double mean_loss = 0.0;
  double mean_rtt_ms = 0.0;
};

/// Expected loss / base+queue RTT of the internal path S->E under the
/// snapshot's utilization.  Horizon 0 keeps burst timelines out of it: the
/// number is the stationary expectation the policy reasons about, not one
/// noisy draw.
std::pair<double, double> backbone_quality(const measure::Workbench& world,
                                           core::PopId ingress, core::PopId egress,
                                           double t,
                                           const traffic::LoadSnapshot& snapshot,
                                           std::uint64_t seed) {
  auto segments =
      world.vns().internal_segments(ingress, egress, world.catalog(),
                                    snapshot.link_utilization);
  if (segments.empty()) return {0.0, 0.0};
  const sim::PathModel path{std::move(segments), 0.0,
                            util::Rng{seed}.fork("qoe").fork(
                                std::uint64_t{ingress} << 16 | egress)};
  return {path.loss_probability(t), path.base_rtt_ms() + path.utilization_queue_ms()};
}

QoeSummary weigh_qoe(const measure::Workbench& world, const traffic::Matrix& matrix,
                     double t, const traffic::LoadSnapshot& snapshot,
                     const std::vector<double>& moved_mbps,
                     const std::vector<traffic::PathQuality>& internet,
                     std::uint64_t seed) {
  const std::size_t pop_count = matrix.pop_count();
  QoeSummary out;
  double loss_weighted = 0.0;
  double rtt_weighted = 0.0;
  for (core::PopId s = 0; s < pop_count; ++s) {
    for (core::PopId e = 0; e < pop_count; ++e) {
      if (s == e) continue;
      const double demand = matrix.demand_mbps(s, e, t);
      if (demand <= 0.0) continue;
      const std::size_t cell = std::size_t{s} * pop_count + e;
      const auto [loss, rtt] = backbone_quality(world, s, e, t, snapshot, seed);
      const double moved =
          moved_mbps.empty() ? 0.0 : std::min(moved_mbps[cell], demand);
      const double kept = demand - moved;
      out.demand_mbps += demand;
      loss_weighted += kept * loss;
      rtt_weighted += kept * rtt;
      if (moved > 0.0 && internet[cell].valid) {
        loss_weighted += moved * internet[cell].loss;
        rtt_weighted += moved * internet[cell].rtt_ms;
      } else {
        loss_weighted += moved * loss;
        rtt_weighted += moved * rtt;
      }
    }
  }
  if (out.demand_mbps > 0.0) {
    out.mean_loss = loss_weighted / out.demand_mbps;
    out.mean_rtt_ms = rtt_weighted / out.demand_mbps;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::BenchArgs::parse(argc, argv);
  auto world = bench::build_world(
      args, "bench_ablation_wan_offload",
      "ablation: capacity-aware WAN offload (DESIGN S14)");
  auto& vns = world->vns();
  const auto campaign_t0 = std::chrono::steady_clock::now();

  // ---- build the matrix ---------------------------------------------------
  // Default offered load: hot enough that the busiest long-haul clears the
  // threshold at the diurnal peak.  The gravity matrix is diagonal-heavy
  // (most users' egress is their ingress PoP), so only a sliver of the total
  // crosses any one circuit — hence the large multiplier.
  traffic::MatrixConfig mconfig;
  mconfig.offered_load_mbps =
      args.offered_load_mbps > 0.0
          ? args.offered_load_mbps
          : 48.0 * vns.config().long_haul_capacity_mbps;
  mconfig.seed = args.seed * 1315423911ULL + 17;
  mconfig.threads = args.threads;
  const auto matrix = traffic::Matrix::build(vns, world->internet(), mconfig);

  // Busiest half-hour of the day: scan the diurnal curve for the instant of
  // maximum total offered load — the snapshot the circuits are sized for.
  double peak_t = 0.0;
  double peak_total = -1.0;
  for (int slot = 0; slot < 48; ++slot) {
    const double t = 1800.0 * slot;
    double total = 0.0;
    for (core::PopId s = 0; s < matrix.pop_count(); ++s)
      for (core::PopId e = 0; e < matrix.pop_count(); ++e)
        if (s != e) total += matrix.demand_mbps(s, e, t);
    if (total > peak_total) {
      peak_total = total;
      peak_t = t;
    }
  }
  std::cout << "offered load " << util::format_double(mconfig.offered_load_mbps, 0)
            << " Mbps at peak; busiest instant "
            << util::format_double(peak_t / sim::kSecondsPerHour, 1) << " h UTC ("
            << util::format_double(peak_total, 0) << " Mbps offered)\n";

  // ---- assign + snapshot the hot state ------------------------------------
  auto snapshot = traffic::assign_load(vns, matrix, peak_t);
  const auto before = snapshot;  // pre-offload picture for the QoE delta

  // ---- the Internet-transit quality probe ---------------------------------
  // For a cell the policy wants to move, probe the representative prefix's
  // local-exit transit path from the ingress PoP: a 500-packet train for
  // loss, a 5-ping burst for min RTT — each cell on its own derived RNG so
  // decisions never depend on evaluation order elsewhere.
  const std::uint64_t probe_seed = args.seed ^ 0x0ff10adULL;
  traffic::QualityProbe probe = [&](core::PopId ingress,
                                    core::PopId egress) -> traffic::PathQuality {
    traffic::PathQuality quality;
    const auto rep = matrix.representative_prefix(ingress, egress);
    if (!rep) return quality;
    auto segments = world->probe_segments(ingress, *rep, /*include_last_mile=*/false,
                                          /*upstreams_only=*/true);
    if (segments.empty()) return quality;
    util::Rng cell_rng = util::Rng{probe_seed}.fork(
        std::uint64_t{ingress} << 16 | egress);
    const sim::PathModel path{std::move(segments), 0.0, cell_rng.fork("path")};
    measure::Prober prober{cell_rng.fork("probe")};
    const auto train = prober.train(path, peak_t, 500);
    const auto ping = prober.ping(path, peak_t, 5);
    quality.valid = true;
    quality.loss = train.loss_fraction();
    quality.rtt_ms = ping.min_rtt_ms.value_or(path.base_rtt_ms());
    return quality;
  };

  // ---- evaluate the policy ------------------------------------------------
  traffic::OffloadConfig oconfig;
  oconfig.threshold = args.offload_threshold;
  oconfig.target = std::min(0.75, args.offload_threshold);
  const traffic::OffloadPolicy policy{oconfig, probe};
  const auto report = policy.evaluate(vns, matrix, peak_t, snapshot);

  // ---- long-haul utilization, before vs after -----------------------------
  util::TextTable links{{"circuit", "capacity", "util before", "util after", "state"}};
  for (std::size_t i = 0; i < vns.links().size(); ++i) {
    const auto& link = vns.links()[i];
    if (!link.long_haul) continue;
    const double util_before = before.link_utilization[i];
    const double util_after = snapshot.link_utilization[i];
    const char* state = util_before < oconfig.threshold ? "cool"
                        : util_after <= oconfig.target + 1e-9
                            ? "relieved"
                            : "still hot";
    links.add_row({std::string{vns.pops()[link.a].name} + "-" +
                       std::string{vns.pops()[link.b].name},
                   util::format_double(link.capacity_mbps, 0) + " Mbps",
                   util::format_percent(util_before),
                   util::format_percent(util_after), state});
  }
  std::cout << "\nlong-haul circuits at the peak:\n";
  links.print(std::cout);

  // ---- per-decision detail ------------------------------------------------
  util::TextTable decisions{
      {"cell", "verdict", "flows", "moved", "inet loss", "inet rtt"}};
  for (const auto& d : report.decisions) {
    decisions.add_row(
        {std::string{vns.pops()[d.ingress].name} + "->" +
             std::string{vns.pops()[d.egress].name},
         d.accepted ? "offload" : "reject (QoE)",
         std::to_string(d.flows),
         util::format_double(d.moved_mbps, 0) + " Mbps",
         d.internet.valid ? util::format_percent(d.internet.loss) : "n/a",
         d.internet.valid ? util::format_double(d.internet.rtt_ms, 1) + " ms" : "n/a"});
  }
  if (!report.decisions.empty()) {
    std::cout << "\noffload decisions (evaluation order):\n";
    decisions.print(std::cout);
  } else {
    std::cout << "\nno long-haul crossed the " << util::format_percent(oconfig.threshold)
              << " threshold — nothing to offload\n";
  }

  // ---- QoE accounting -----------------------------------------------------
  const std::size_t pop_count = matrix.pop_count();
  std::vector<double> moved_mbps(pop_count * pop_count, 0.0);
  std::vector<traffic::PathQuality> internet(pop_count * pop_count);
  for (const auto& d : report.decisions) {
    if (!d.accepted) continue;
    const std::size_t cell = std::size_t{d.ingress} * pop_count + d.egress;
    moved_mbps[cell] += d.moved_mbps;
    internet[cell] = d.internet;
  }
  const auto qoe_before =
      weigh_qoe(*world, matrix, peak_t, before, {}, internet, args.seed);
  const auto qoe_after =
      weigh_qoe(*world, matrix, peak_t, snapshot, moved_mbps, internet, args.seed);

  std::cout << "\nQoE (demand-weighted over all backbone cells):\n"
            << "  expected loss: " << util::format_percent(qoe_before.mean_loss)
            << " -> " << util::format_percent(qoe_after.mean_loss) << "\n"
            << "  expected rtt:  " << util::format_double(qoe_before.mean_rtt_ms, 2)
            << " ms -> " << util::format_double(qoe_after.mean_rtt_ms, 2) << " ms\n"
            << "\nwan offload: " << report.offloaded_flows << " flows moved ("
            << util::format_double(report.moved_mbps, 0) << " Mbps), "
            << report.rejected_flows << " held back by the QoE floor, "
            << util::format_double(report.wan_bytes_saved / 1e9, 2)
            << " GB of leased-circuit bytes saved per "
            << util::format_double(oconfig.window_s / 3600.0, 0) << " h window\n";

  const double campaign_s = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - campaign_t0)
                                .count();

  auto& record = bench::BenchRecord::global();
  record.config("offered_load_mbps", mconfig.offered_load_mbps);
  record.config("offload_threshold", oconfig.threshold);
  record.config("offload_target", oconfig.target);
  bench::metric("peak_hour_utc", peak_t / sim::kSecondsPerHour);
  bench::metric("peak_offered_mbps", peak_total);
  bench::metric("util_max_before", before.util_max);
  bench::metric("util_max_after", snapshot.util_max);
  bench::metric("unrouted_mbps", snapshot.unrouted_mbps);
  bench::metric("offloaded_flows", report.offloaded_flows);
  bench::metric("rejected_flows", report.rejected_flows);
  bench::metric("moved_mbps", report.moved_mbps);
  bench::metric("wan_bytes_saved", report.wan_bytes_saved);
  bench::metric("qoe_loss_before", qoe_before.mean_loss);
  bench::metric("qoe_loss_after", qoe_after.mean_loss);
  bench::metric("qoe_rtt_before_ms", qoe_before.mean_rtt_ms);
  bench::metric("qoe_rtt_after_ms", qoe_after.mean_rtt_ms);

  bench::finish_run(args, campaign_s);
  return 0;
}
