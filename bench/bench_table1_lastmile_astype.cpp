// Table 1 — average loss from Amsterdam to ASes of different types in
// different regions.
//
// Methodology (§5.2.3): the 600-host campaign viewed from the Amsterdam
// vantage, broken down by destination AS type (LTP/STP/CAHP/EC) and region.
//
// Paper values (average loss %):
//   AP: 0.45 / 1.30 / 2.80 / 1.92     EU: 0.11 / 0.62 / 1.58 / 0.52
//   NA: 0.57 / 0.49 / 0.46 / 0.55
// Orderings: in AP and EU the transit hierarchy shows (LTP best, CAHP
// worst, with EC better than STP in EU); in NA the types blur.
#include <iostream>
#include <map>

#include "bench/bench_common.hpp"
#include "measure/prober.hpp"
#include "sim/path_model.hpp"
#include "sim/time.hpp"
#include "util/stats.hpp"

using namespace vns;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  auto world = bench::build_world(args, "bench_table1_lastmile_astype",
                                  "Table 1 (avg loss from Amsterdam by AS type x region)");
  auto& w = *world;
  const double days = args.days > 0 ? args.days : (args.small ? 1.0 : 5.0);
  const double horizon = days * sim::kSecondsPerDay;
  const int per_cell = args.small ? 12 : 50;
  util::Rng rng{args.seed ^ 0x7ab1e'1ULL};
  measure::Prober prober{rng.fork("trains")};

  const auto hosts = w.select_last_mile_hosts(per_cell, args.seed ^ 0x605);
  const auto ams = *w.vns().find_pop("AMS");

  std::map<geo::WorldRegion, std::map<topo::AsType, util::Summary>> results;
  for (const auto& host : hosts) {
    const sim::PathModel path{w.probe_segments(ams, host.prefix_id, true), horizon,
                              util::Rng{args.seed ^ (host.prefix_id * 17 + 3)}};
    for (double t = 0.0; t < horizon; t += 600.0) {
      results[host.region][host.type].add(prober.train(path, t, 100).loss_fraction() * 100.0);
    }
  }

  const double paper[3][4] = {// [region][type], region order AP, EU, NA
                              {0.45, 1.30, 2.80, 1.92},
                              {0.11, 0.62, 1.58, 0.52},
                              {0.57, 0.49, 0.46, 0.55}};
  const std::pair<const char*, geo::WorldRegion> regions[] = {
      {"AP", geo::WorldRegion::kAsiaPacific},
      {"EU", geo::WorldRegion::kEurope},
      {"NA", geo::WorldRegion::kNorthCentralAmerica}};

  util::TextTable table{{"Region", "LTP %", "STP %", "CAHP %", "EC %", "paper (LTP/STP/CAHP/EC)"}};
  for (int r = 0; r < 3; ++r) {
    std::vector<std::string> row{regions[r].first};
    for (int t = 0; t < topo::kAsTypeCount; ++t) {
      row.push_back(util::format_double(
          results[regions[r].second][static_cast<topo::AsType>(t)].mean(), 2));
    }
    std::string ref;
    for (int t = 0; t < 4; ++t) ref += (t ? " / " : "") + util::format_double(paper[r][t], 2);
    row.push_back(ref);
    table.add_row(row);
  }
  std::cout << "Table 1 - average loss from Amsterdam by destination AS type and region:\n";
  table.print(std::cout);

  // Ordering checks the paper highlights.
  auto mean = [&](geo::WorldRegion region, topo::AsType type) {
    return results[region][type].mean();
  };
  std::cout << "\nordering checks:\n";
  std::cout << "  AP: CAHP worst, LTP best: "
            << (mean(geo::WorldRegion::kAsiaPacific, topo::AsType::kCAHP) >
                        mean(geo::WorldRegion::kAsiaPacific, topo::AsType::kEC) &&
                    mean(geo::WorldRegion::kAsiaPacific, topo::AsType::kLTP) <
                        mean(geo::WorldRegion::kAsiaPacific, topo::AsType::kSTP)
                ? "yes"
                : "NO")
            << '\n';
  std::cout << "  EU: EC outperforms STP: "
            << (mean(geo::WorldRegion::kEurope, topo::AsType::kEC) <
                        mean(geo::WorldRegion::kEurope, topo::AsType::kSTP)
                ? "yes"
                : "NO")
            << '\n';
  double na_min = 1e18, na_max = 0.0;
  for (int t = 0; t < topo::kAsTypeCount; ++t) {
    const double v = mean(geo::WorldRegion::kNorthCentralAmerica, static_cast<topo::AsType>(t));
    na_min = std::min(na_min, v);
    na_max = std::max(na_max, v);
  }
  std::cout << "  NA: types blurred (max/min " << util::format_double(na_max / na_min, 2)
            << "x, paper ~1.2x)\n";
  bench::metric("ap_cahp_mean_loss", mean(geo::WorldRegion::kAsiaPacific, topo::AsType::kCAHP));
  bench::metric("ap_ltp_mean_loss", mean(geo::WorldRegion::kAsiaPacific, topo::AsType::kLTP));
  bench::metric("na_type_spread", na_min > 0 ? na_max / na_min : 0.0);
  bench::finish_run(args, 0.0);
  return 0;
}
