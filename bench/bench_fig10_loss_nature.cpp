// Figure 10 — the nature of loss: magnitude vs temporal spread.
//
// Methodology (§5.1.2): each two-minute session is split into 24 five-second
// slots; the number of lossy slots is plotted against the session's overall
// loss percentage, for the Amsterdam client through upstreams (top) and
// through VNS (bottom).
//
// Paper: through upstreams there is (a) a linear "baseline" of random loss
// (loss grows with the number of lossy slots), (b) upper-LEFT outliers —
// large loss concentrated in a few slots (short bursts: IGP convergence,
// brief congestion), and (c) upper-RIGHT outliers — large loss across the
// whole stream (sustained congestion / BGP convergence).  VNS eliminates
// both outlier families and the multi-slot small-loss baseline.
#include <iostream>

#include "bench/bench_common.hpp"
#include "media/session.hpp"
#include "sim/path_model.hpp"
#include "sim/time.hpp"
#include "util/stats.hpp"

using namespace vns;

namespace {

struct ScatterStats {
  int sessions = 0;
  int lossy_sessions = 0;        ///< any loss at all
  int above_line = 0;            ///< > 0.15 % overall
  int burst_outliers = 0;        ///< > 0.15 % in <= 4 slots (upper left)
  int sustained_outliers = 0;    ///< > 0.15 % in >= 12 slots (upper right)
  util::Summary slots_when_small;  ///< lossy slots for sessions <= 0.15 %
  double corr_accum_x = 0, corr_accum_y = 0, corr_xx = 0, corr_yy = 0, corr_xy = 0;
  int corr_n = 0;

  void add(const media::SessionStats& stats) {
    ++sessions;
    const double loss = stats.loss_percent();
    const int slots = stats.lossy_slots();
    if (loss > 0.0) {
      ++lossy_sessions;
      // Correlation between lossy slots and loss magnitude over the
      // baseline band (the linear relationship the paper describes).
      if (loss <= 0.15) {
        slots_when_small.add(slots);
        corr_accum_x += slots;
        corr_accum_y += loss;
        corr_xx += double(slots) * slots;
        corr_yy += loss * loss;
        corr_xy += slots * loss;
        ++corr_n;
      }
    }
    if (loss > 0.15) {
      ++above_line;
      if (slots <= 4) ++burst_outliers;
      if (slots >= 12) ++sustained_outliers;
    }
  }

  [[nodiscard]] double baseline_correlation() const {
    if (corr_n < 3) return 0.0;
    const double n = corr_n;
    const double cov = corr_xy / n - (corr_accum_x / n) * (corr_accum_y / n);
    const double vx = corr_xx / n - (corr_accum_x / n) * (corr_accum_x / n);
    const double vy = corr_yy / n - (corr_accum_y / n) * (corr_accum_y / n);
    return (vx > 0 && vy > 0) ? cov / std::sqrt(vx * vy) : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  auto world = bench::build_world(args, "bench_fig10_loss_nature",
                                  "Fig. 10 (loss magnitude vs lossy 5s slots, Amsterdam)");
  auto& w = *world;
  const double days = args.days > 0 ? args.days : (args.small ? 3.0 : 14.0);
  const double horizon = days * sim::kSecondsPerDay;
  const util::Rng rng{args.seed ^ 0xf16'10ULL};

  const auto client = *w.vns().find_pop("AMS");
  const char* servers[] = {"FRA", "HKG", "SIN", "ASH", "NYC"};
  const auto profile = media::VideoProfile::hd1080();
  media::SessionConfig session_config;

  // One streaming shard per (server, route); VNS tasks at even indices.
  std::vector<measure::StreamTask> tasks;
  for (std::size_t s = 0; s < std::size(servers); ++s) {
    const auto server = *w.vns().find_pop(servers[s]);
    const auto vns_segments = w.vns().internal_segments(client, server, w.catalog());
    std::vector<topo::AsIndex> transit_as_path;
    for (const auto& attachment : w.vns().attachments()) {
      if (attachment.pop == client && attachment.upstream) {
        transit_as_path.push_back(attachment.as);
        break;
      }
    }
    const auto transit_segments = topo::transit_path_segments(
        w.internet(), w.vns().pop(client).city.location, w.vns().pop(client).city.region,
        transit_as_path, w.vns().pop(server).city.location, topo::AsType::kLTP,
        w.vns().pop(server).city.region, w.catalog(), w.delay(), false);

    for (const bool via_vns : {true, false}) {
      measure::StreamTask task;
      task.segments = via_vns ? vns_segments : transit_segments;
      task.horizon_s = horizon;
      task.start_s = s * 150.0;
      task.end_s = horizon - 150.0;
      task.interval_s = 1800.0;
      task.profile = profile;
      task.session = session_config;
      tasks.push_back(std::move(task));
    }
  }

  const auto campaign_t0 = std::chrono::steady_clock::now();
  const auto results = measure::run_stream_campaign(tasks, rng, args.threads);
  const double campaign_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - campaign_t0).count();
  ScatterStats through_vns, through_transit;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    auto& scatter = (i % 2 == 0) ? through_vns : through_transit;
    for (const auto& stats : results[i].sessions) scatter.add(stats);
  }

  util::TextTable table{{"metric", "through upstreams", "through VNS"}};
  auto pct = [](int part, int whole) {
    return whole ? util::format_percent(double(part) / whole, 2) : "n/a";
  };
  table.add_row({"sessions", std::to_string(through_transit.sessions),
                 std::to_string(through_vns.sessions)});
  table.add_row({"sessions with any loss",
                 pct(through_transit.lossy_sessions, through_transit.sessions),
                 pct(through_vns.lossy_sessions, through_vns.sessions)});
  table.add_row({"sessions > 0.15% loss", pct(through_transit.above_line, through_transit.sessions),
                 pct(through_vns.above_line, through_vns.sessions)});
  table.add_row({"upper-LEFT outliers (>0.15%, <=4 slots)",
                 std::to_string(through_transit.burst_outliers),
                 std::to_string(through_vns.burst_outliers)});
  table.add_row({"upper-RIGHT outliers (>0.15%, >=12 slots)",
                 std::to_string(through_transit.sustained_outliers),
                 std::to_string(through_vns.sustained_outliers)});
  table.add_row({"baseline corr(lossy slots, loss%)",
                 util::format_double(through_transit.baseline_correlation(), 2),
                 util::format_double(through_vns.baseline_correlation(), 2)});
  table.add_row({"mean lossy slots (small-loss sessions)",
                 util::format_double(through_transit.slots_when_small.mean(), 1),
                 util::format_double(through_vns.slots_when_small.mean(), 1)});
  std::cout << "Fig 10 - loss magnitude vs number of lossy 5s slots (Amsterdam client):\n";
  table.print(std::cout);
  std::cout << "paper: transit shows a linear random-loss baseline plus both outlier\n"
               "families; VNS eliminates the outliers and the multi-slot baseline\n";
  bench::metric("transit_sessions", std::uint64_t(through_transit.sessions));
  bench::metric("vns_sessions", std::uint64_t(through_vns.sessions));
  bench::metric("transit_burst_outliers", std::uint64_t(through_transit.burst_outliers));
  bench::metric("transit_sustained_outliers", std::uint64_t(through_transit.sustained_outliers));
  bench::metric("vns_burst_outliers", std::uint64_t(through_vns.burst_outliers));
  bench::metric("vns_sustained_outliers", std::uint64_t(through_vns.sustained_outliers));
  bench::finish_run(args, campaign_s);
  return 0;
}
