// Million-prefix pipeline bench: streamed world generation -> GeoIP ->
// streamed route feed -> viewpoint FIB compile, at any --scale (the gated
// bench_smoke_xl ctest runs it at xl: ~30k ASes, 1M+ prefixes).
//
// The point of the streamed pipeline is that the full prefix table never
// exists twice in memory: topo::Internet hands each origin's batch straight
// through GeoIP construction and the VNS feed, with periodic convergence
// checkpoints bounding the pending-update queue.  This bench enforces that
// property: peak RSS (getrusage) must stay within ~1.2x of the steady-state
// compiled footprint (/proc/self/statm after the build settles), i.e. the
// build may not transiently balloon past what the converged world needs
// anyway.  A materialized build fails this at xl by hundreds of MB.
//
// Emits the standard BENCH json (rss_per_route, fib.full_build_seconds /
// patch_seconds, arena accounting) with --json.
#include <fstream>
#include <iostream>

#if defined(__unix__)
#include <unistd.h>
#endif

#include "bench/bench_common.hpp"

using namespace vns;

namespace {

/// Current (not peak) resident set in KiB, from /proc/self/statm; 0 where
/// unavailable (the ratio check is skipped there).
std::uint64_t current_rss_kb() {
#if defined(__unix__)
  std::ifstream statm{"/proc/self/statm"};
  std::uint64_t total_pages = 0, resident_pages = 0;
  if (!(statm >> total_pages >> resident_pages)) return 0;
  const long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) return 0;
  return resident_pages * static_cast<std::uint64_t>(page) / 1024;
#else
  return 0;
#endif
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::begin_bench(args, "bench_xl_pipeline",
                     "million-prefix streamed build pipeline (ROADMAP item 2)");

  auto config = args.workbench_config();
  // Stream at every tier, not just xl: the smoke tiers exercise the same
  // pipeline shape the gated xl run scales up.
  config.stream_generation = true;

  const auto t0 = std::chrono::steady_clock::now();
  auto world = measure::Workbench::build(config);
  const double build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  auto& w = *world;
  const std::size_t prefixes = w.internet().prefix_count();
  std::cout << "world: " << w.internet().as_count() << " ASes, " << prefixes
            << " prefixes (streamed), " << w.vns().fabric().neighbor_count()
            << " eBGP sessions (built in " << util::format_double(build_seconds, 1)
            << " s)\n";
  auto& record = bench::BenchRecord::global();
  record.set_build_seconds(build_seconds);
  record.set_route_count(prefixes);
  record.config("ases", w.internet().as_count());
  record.config("prefixes", prefixes);
  record.config("ebgp_sessions", w.vns().fabric().neighbor_count());

  // Compile every viewpoint FIB (one egress query per PoP forces it); this
  // is the steady serving footprint the ratio check compares against.
  const auto t1 = std::chrono::steady_clock::now();
  const auto probe = config.vns.anycast_prefix.first_host();
  for (const auto& pop : w.vns().pops()) {
    const auto egress = w.vns().egress_pop(pop.id, probe);
    if (!egress) {
      std::cerr << "bench_xl_pipeline: no anycast route at PoP " << pop.name << "\n";
      return 1;
    }
  }
  const double compile_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t1).count();

  const std::uint64_t steady_kb = current_rss_kb();
  const std::uint64_t peak_kb = bench::peak_rss_kb();
  const auto fib = net::FlatFibMetrics::global().snapshot();
  const auto arena = w.vns().fabric().rib_arena_stats();
  const double peak_over_steady =
      steady_kb > 0 ? static_cast<double>(peak_kb) / static_cast<double>(steady_kb) : 0.0;

  std::cout << "viewpoint FIBs: " << fib.entries << " entries, " << fib.spill_tables
            << " spill tables, compiled in " << util::format_double(compile_seconds, 2)
            << " s (cumulative full builds " << util::format_double(fib.full_build_seconds, 2)
            << " s)\n";
  std::cout << "rib arena: " << arena.reserved_bytes / (1024 * 1024) << " MiB reserved, "
            << arena.live_bytes / (1024 * 1024) << " MiB live, " << arena.freelist_reuses
            << " freelist reuses across " << arena.allocations << " allocations\n";
  std::cout << "memory: steady " << steady_kb / 1024 << " MiB, peak " << peak_kb / 1024
            << " MiB (peak/steady " << util::format_double(peak_over_steady, 3) << ")\n";

  bench::metric("prefixes", prefixes);
  bench::metric("build_seconds", build_seconds);
  bench::metric("fib_compile_seconds", compile_seconds);
  bench::metric("steady_rss_kb", steady_kb);
  bench::metric("peak_over_steady", peak_over_steady);
  bench::metric("arena_reserved_bytes", arena.reserved_bytes);
  bench::metric("arena_live_bytes", arena.live_bytes);
  bench::metric("arena_freelist_reuses", arena.freelist_reuses);

  bench::finish_run(args, build_seconds + compile_seconds);

  // The streaming guarantee, enforced: the build may not have transiently
  // held significantly more than the converged world retains.  64 MiB of
  // slack absorbs allocator quantization at the small smoke tiers, where
  // the absolute footprint is tiny and the ratio alone would be noise.
  if (steady_kb > 0) {
    const std::uint64_t budget_kb =
        static_cast<std::uint64_t>(static_cast<double>(steady_kb) * 1.2) + 64 * 1024;
    if (peak_kb > budget_kb) {
      std::cerr << "bench_xl_pipeline: peak RSS " << peak_kb << " KiB exceeds budget "
                << budget_kb << " KiB (1.2x steady " << steady_kb
                << " KiB + 64 MiB slack) - streamed build is materializing\n";
      return 1;
    }
  }
  return 0;
}
