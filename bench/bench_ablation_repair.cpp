// Ablation — loss-repair strategies on the paper's paths.
//
// §2 frames the repair design space: FEC handles random loss but fails when
// loss is bursty; relay-based selective retransmission handles bursts but
// needs a relay close to the user (low RTT).  VNS's PoPs are those relays.
// This bench runs both strategies over loss processes matching the Fig. 9
// path classes (clean VNS, random transit baseline, bursty transit) and
// over relay distances matching VNS-PoP vs remote-server placement.
#include <iostream>

#include "bench/bench_common.hpp"
#include "media/repair.hpp"

using namespace vns;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::begin_bench(args, "bench_ablation_repair",
                     "ablation: FEC vs relay retransmission (S2 discussion)");
  util::Rng rng{args.seed ^ 0xf1c5ULL};
  const std::uint64_t packets = args.small ? 100000 : 400000;

  struct Scenario {
    const char* name;
    double mean_loss;
    double burst;
  };
  const Scenario scenarios[] = {
      {"VNS path (0.01% random)", 0.0001, 1.0},
      {"transit baseline (0.1% random)", 0.001, 1.0},
      {"congested transit (1% random)", 0.01, 1.0},
      {"bursty transit (1%, bursts of 10)", 0.01, 10.0},
      {"severe bursts (3%, bursts of 25)", 0.03, 25.0},
  };

  util::TextTable table{{"loss process", "raw loss", "FEC(10,1)", "FEC(10,3)",
                         "RTX via PoP (30ms)", "RTX far relay (250ms)"}};
  for (const auto& scenario : scenarios) {
    const auto fec1 = media::run_fec(scenario.mean_loss, scenario.burst, packets, {10, 1}, rng);
    const auto fec3 = media::run_fec(scenario.mean_loss, scenario.burst, packets, {10, 3}, rng);
    media::RetransmitConfig near_relay{.deadline_ms = 150.0, .relay_rtt_ms = 30.0};
    media::RetransmitConfig far_relay{.deadline_ms = 150.0, .relay_rtt_ms = 250.0};
    const auto rtx_near =
        media::run_retransmit(scenario.mean_loss, scenario.burst, packets, near_relay, rng);
    const auto rtx_far =
        media::run_retransmit(scenario.mean_loss, scenario.burst, packets, far_relay, rng);
    table.add_row({scenario.name, util::format_percent(fec1.raw_loss(), 3),
                   util::format_percent(fec1.residual_loss(), 3),
                   util::format_percent(fec3.residual_loss(), 3),
                   util::format_percent(rtx_near.residual_loss(), 3),
                   util::format_percent(rtx_far.residual_loss(), 3)});
  }
  std::cout << "residual loss after repair (" << packets << " packets per cell):\n";
  table.print(std::cout);
  std::cout << "paper (S2): FEC mitigates random loss but 'performs poorly when loss is\n"
               "very high or bursty'; retransmission needs 'a video relay server close\n"
               "to end users' - which is what VNS's PoP relays provide\n";
  bench::metric("packets_per_cell", packets);
  bench::finish_run(args, 0.0);
  return 0;
}
