// Serving-mode SLO bench: live p50/p99 resolution latency under churn.
//
// Builds the serving world, generates a deterministic churn trace (route
// flaps over the upstream transit sessions plus link/upstream faults), and
// runs serve::Engine: a churn thread streams the trace into the fabric while
// resolver threads hammer the lazily-patched viewpoint FIBs.  One run yields
// the full SLO picture — steady-phase and converging-phase latency ladders,
// freshness lag in batch ticks, stale-served counts, patch-vs-rebuild
// split — emitted as the `slo` block of BENCH_slo_serving.json.
//
// A second engine run over the *same trace* against a world with incremental
// FIB patching disabled (fib_patch_max_dirty_fraction < 0, every refresh a
// full DIR-16-8-8 recompile) isolates what the RIB-delta patch path buys the
// serving tail: the converging-phase p99 of both configurations prints side
// by side and lands in the metrics.
#include <iostream>
#include <sstream>

#include "bench/bench_common.hpp"
#include "serve/engine.hpp"
#include "serve/update_trace.hpp"

using namespace vns;

namespace {

serve::SloReport run_engine(core::VnsNetwork& vns, const serve::UpdateTrace& trace,
                            const bench::BenchArgs& args, std::ostream* heartbeat_out) {
  serve::EngineConfig config;
  config.resolver_threads = util::resolve_thread_count(args.threads);
  config.duration_s = args.small ? 0.0 : 0.5;
  config.qps = 0.0;  // unthrottled: tails come from the FIB, not the pacer
  config.seed = args.seed;
  config.heartbeat_every = 4;
  config.heartbeat_out = heartbeat_out;
  serve::Engine engine(vns, config);
  return engine.run(trace);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  auto world = bench::build_world(args, "bench_slo_serving",
                                  "serving-mode SLO observability under churn (S3.2)");
  auto& w = *world;
  w.vns().set_geo_routing(true);

  serve::GenerateConfig gen;
  gen.seed = args.seed;
  gen.scale = std::string{topo::to_string(args.scale)};
  gen.batches = args.small ? 12 : 24;
  gen.events_per_batch = args.small ? 6 : 12;
  const serve::UpdateTrace trace = serve::generate_trace(w.vns(), gen);
  std::cout << "trace: " << trace.events.size() << " events over " << trace.batches
            << " batches (seed " << trace.seed << ")\n\n";

  const auto campaign_t0 = std::chrono::steady_clock::now();
  std::ostringstream heartbeats;
  const serve::SloReport patched = run_engine(w.vns(), trace, args, &heartbeats);

  // Comparison world: identical topology and routes, but every viewpoint-FIB
  // refresh is a full recompile.  Same trace, so the control-plane
  // trajectory is identical; only the data-plane refresh strategy differs.
  auto full_config = args.workbench_config();
  full_config.vns.fib_patch_max_dirty_fraction = -1.0;
  auto full_world = measure::Workbench::build(full_config);
  full_world->vns().set_geo_routing(true);
  const serve::SloReport full_rebuild =
      run_engine(full_world->vns(), trace, args, nullptr);
  const auto campaign_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - campaign_t0).count();

  std::cout << "heartbeats (every 4 batches):\n" << heartbeats.str() << "\n";

  util::TextTable table{{"configuration", "phase", "samples", "p50(us)", "p99(us)", "p999(us)"}};
  const auto row = [&table](const char* config_name, const char* phase,
                            const obs::LatencySnapshot& snap) {
    table.add_row({config_name, phase, std::to_string(snap.total()),
                   util::format_double(snap.quantile(0.50) / 1000.0, 1),
                   util::format_double(snap.quantile(0.99) / 1000.0, 1),
                   util::format_double(snap.quantile(0.999) / 1000.0, 1)});
  };
  row("incremental patch", "steady", patched.steady_ns);
  row("incremental patch", "converging", patched.converging_ns);
  row("incremental patch", "stale", patched.stale_ns);
  row("full rebuild", "steady", full_rebuild.steady_ns);
  row("full rebuild", "converging", full_rebuild.converging_ns);
  row("full rebuild", "stale", full_rebuild.stale_ns);
  table.print(std::cout);
  std::cout << "\nfreshness lag (batches): p50 "
            << patched.freshness_lag.quantile(0.50) << ", p99 "
            << patched.freshness_lag.quantile(0.99) << ", max "
            << patched.max_freshness_lag << " over "
            << patched.freshness_lag.total() << " retirements\n";
  std::cout << "patch vs rebuild: " << patched.fib_patches << " patches, "
            << patched.fib_full_rebuilds << " full rebuilds (patched world); "
            << full_rebuild.fib_patches << " patches, " << full_rebuild.fib_full_rebuilds
            << " full rebuilds (rebuild world)\n";

  bench::metric("probes", patched.probes);
  bench::metric("stale_served", patched.stale_served);
  bench::metric("steady_p50_ns", patched.steady_ns.quantile(0.50));
  bench::metric("steady_p99_ns", patched.steady_ns.quantile(0.99));
  bench::metric("converging_p50_ns", patched.converging_ns.quantile(0.50));
  bench::metric("converging_p99_ns", patched.converging_ns.quantile(0.99));
  bench::metric("converging_p99_full_rebuild_ns", full_rebuild.converging_ns.quantile(0.99));
  bench::metric("freshness_lag_p99_batches", patched.freshness_lag.quantile(0.99));
  bench::metric("max_freshness_lag_batches", patched.max_freshness_lag);
  bench::metric("fib_patches", patched.fib_patches);
  bench::metric("fib_full_rebuilds", patched.fib_full_rebuilds);
  bench::BenchRecord::global().block("slo", patched.to_json());

  bench::finish_run(args, campaign_seconds);
  return 0;
}
