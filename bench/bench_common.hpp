// Shared scaffolding for the figure/table benches.
//
// Every bench binary regenerates one table or figure from the paper's
// evaluation.  They accept:
//   --small        tiny topology (CI smoke runs)
//   --seed N       world seed (default 1)
//   --days D       campaign length where applicable (scaled-down defaults)
//   --threads N    campaign worker count (default: VNS_THREADS, then
//                  hardware; results are bit-identical for any N)
// and print deterministic, diff-able text tables.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "measure/workbench.hpp"
#include "util/counters.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace vns::bench {

struct BenchArgs {
  bool small = false;
  std::uint64_t seed = 1;
  double days = 0.0;  ///< 0: bench-specific default
  int threads = 0;    ///< 0: VNS_THREADS env, then hardware concurrency

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg == "--small") {
        args.small = true;
      } else if (arg == "--seed" && i + 1 < argc) {
        args.seed = std::strtoull(argv[++i], nullptr, 10);
      } else if (arg == "--days" && i + 1 < argc) {
        args.days = std::strtod(argv[++i], nullptr);
      } else if (arg == "--threads" && i + 1 < argc) {
        args.threads = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
      } else if (arg == "--help") {
        std::cout << "flags: --small --seed N --days D --threads N\n";
        std::exit(0);
      }
    }
    return args;
  }

  [[nodiscard]] measure::WorkbenchConfig workbench_config() const {
    auto config = small ? measure::WorkbenchConfig::small(seed)
                        : measure::WorkbenchConfig::paper_scale(seed);
    config.threads = threads;
    return config;
  }
};

/// Builds the workbench, timing and reporting construction.
inline std::unique_ptr<measure::Workbench> build_world(const BenchArgs& args,
                                                       const std::string& bench_name,
                                                       const std::string& paper_ref) {
  util::print_bench_header(std::cout, bench_name, paper_ref, args.seed);
  const auto t0 = std::chrono::steady_clock::now();
  auto world = measure::Workbench::build(args.workbench_config());
  const auto elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::cout << "world: " << world->internet().as_count() << " ASes, "
            << world->internet().prefixes().size() << " prefixes, "
            << world->vns().fabric().neighbor_count() << " eBGP sessions (built in "
            << util::format_double(elapsed, 1) << " s)\n\n";
  util::Counters::global().set("bgp.messages_delivered",
                               world->vns().fabric().messages_delivered());
  return world;
}

/// Prints the work-counter snapshot and campaign wall-clock, the trailing
/// block every bench emits so the engine's perf trajectory stays observable.
inline void print_run_counters(std::ostream& out, const BenchArgs& args,
                               double campaign_seconds) {
  out << "\nthreads: " << util::resolve_thread_count(args.threads)
      << ", campaign wall-clock: " << util::format_double(campaign_seconds, 2) << " s\n";
  util::Counters::global().print(out);
}

}  // namespace vns::bench
