// Shared scaffolding for the figure/table benches.
//
// Every bench binary regenerates one table or figure from the paper's
// evaluation.  They accept:
//   --small        tiny topology (CI smoke runs)
//   --seed N       world seed (default 1)
//   --days D       campaign length where applicable (scaled-down defaults)
// and print deterministic, diff-able text tables.
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "measure/workbench.hpp"
#include "util/table.hpp"

namespace vns::bench {

struct BenchArgs {
  bool small = false;
  std::uint64_t seed = 1;
  double days = 0.0;  ///< 0: bench-specific default

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg == "--small") {
        args.small = true;
      } else if (arg == "--seed" && i + 1 < argc) {
        args.seed = std::strtoull(argv[++i], nullptr, 10);
      } else if (arg == "--days" && i + 1 < argc) {
        args.days = std::strtod(argv[++i], nullptr);
      } else if (arg == "--help") {
        std::cout << "flags: --small --seed N --days D\n";
        std::exit(0);
      }
    }
    return args;
  }

  [[nodiscard]] measure::WorkbenchConfig workbench_config() const {
    return small ? measure::WorkbenchConfig::small(seed)
                 : measure::WorkbenchConfig::paper_scale(seed);
  }
};

/// Builds the workbench, timing and reporting construction.
inline std::unique_ptr<measure::Workbench> build_world(const BenchArgs& args,
                                                       const std::string& bench_name,
                                                       const std::string& paper_ref) {
  util::print_bench_header(std::cout, bench_name, paper_ref, args.seed);
  const auto t0 = std::chrono::steady_clock::now();
  auto world = measure::Workbench::build(args.workbench_config());
  const auto elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::cout << "world: " << world->internet().as_count() << " ASes, "
            << world->internet().prefixes().size() << " prefixes, "
            << world->vns().fabric().neighbor_count() << " eBGP sessions (built in "
            << util::format_double(elapsed, 1) << " s)\n\n";
  return world;
}

}  // namespace vns::bench
