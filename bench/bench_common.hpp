// Shared scaffolding for the figure/table benches.
//
// Every bench binary regenerates one table or figure from the paper's
// evaluation.  They accept:
//   --small        tiny topology (CI smoke runs); alias for --scale small
//   --scale S      world tier: small | paper (default) | full (10k ASes,
//                  100k+ prefixes, full-table scale)
//   --seed N       world seed (default 1)
//   --days D       campaign length where applicable (scaled-down defaults)
//   --threads N    campaign worker count (default: VNS_THREADS, then
//                  hardware; results are bit-identical for any N)
//   --json         additionally write BENCH_<name>.json with the run's
//                  config, key metrics, wall-clock and work counters
//   --trace        attach an obs::TraceSink to the fabric and write
//                  TRACE_<name>.jsonl (metrics registry + fabric trace)
// and print deterministic, diff-able text tables.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "bgp/attr_table.hpp"
#include "bgp/fabric.hpp"
#include "measure/workbench.hpp"
#include "net/flat_fib.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "traffic/metrics.hpp"
#include "util/counters.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace vns::bench {

/// Peak resident-set size of this process in KiB (getrusage ru_maxrss; Linux
/// reports KiB directly, macOS reports bytes).  0 on platforms without
/// getrusage — the JSON field is still emitted so downstream tooling sees a
/// stable schema.
[[nodiscard]] inline std::uint64_t peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  auto rss = static_cast<std::uint64_t>(usage.ru_maxrss);
#if defined(__APPLE__)
  rss /= 1024;
#endif
  return rss;
#else
  return 0;
#endif
}

/// The process-wide fabric trace sink used by --trace runs.  Function-local
/// static so benches that never pass --trace never construct the ring buffer.
[[nodiscard]] inline obs::TraceSink& trace_sink() {
  static obs::TraceSink sink{1u << 18};
  return sink;
}

struct BenchArgs {
  bool small = false;  ///< kept as an alias for --scale small
  bool json = false;   ///< also emit BENCH_<name>.json
  bool trace = false;  ///< attach a TraceSink and emit TRACE_<name>.jsonl
  topo::InternetScale scale = topo::InternetScale::kPaper;
  std::uint64_t seed = 1;
  double days = 0.0;  ///< 0: bench-specific default
  int threads = 0;    ///< 0: VNS_THREADS env, then hardware concurrency
  /// Network-wide peak offered load (Mbps) for the traffic matrix; 0 keeps
  /// the legacy load-free data plane (bench-specific default may apply).
  double offered_load_mbps = 0.0;
  /// Long-haul utilization that arms the WAN-offload policy.
  double offload_threshold = 0.85;

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg == "--small") {
        args.small = true;
        args.scale = topo::InternetScale::kSmall;
      } else if (arg == "--scale" && i + 1 < argc) {
        const std::string_view tier = argv[++i];
        const auto parsed = topo::scale_from_string(tier);
        if (!parsed) {
          std::cerr << "unknown --scale '" << tier << "' (valid: small|paper|full|xl)\n";
          std::exit(2);
        }
        args.scale = *parsed;
        args.small = (*parsed == topo::InternetScale::kSmall);
      } else if (arg == "--json") {
        args.json = true;
      } else if (arg == "--trace") {
        args.trace = true;
      } else if (arg == "--seed" && i + 1 < argc) {
        args.seed = std::strtoull(argv[++i], nullptr, 10);
      } else if (arg == "--days" && i + 1 < argc) {
        args.days = std::strtod(argv[++i], nullptr);
      } else if (arg == "--threads" && i + 1 < argc) {
        args.threads = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
      } else if (arg == "--offered-load" && i + 1 < argc) {
        args.offered_load_mbps = std::strtod(argv[++i], nullptr);
      } else if (arg == "--offload-threshold" && i + 1 < argc) {
        args.offload_threshold = std::strtod(argv[++i], nullptr);
      } else if (arg == "--help") {
        std::cout << "flags: --scale {small,paper,full,xl} --small --seed N --days D "
                     "--threads N --offered-load MBPS --offload-threshold U "
                     "--json --trace\n";
        std::exit(0);
      }
    }
    return args;
  }

  [[nodiscard]] measure::WorkbenchConfig workbench_config() const {
    auto config = measure::WorkbenchConfig::at_scale(scale, seed);
    config.threads = threads;
    if (trace) config.trace = &trace_sink();
    return config;
  }
};

// ---- machine-readable run record (--json) ----------------------------------

[[nodiscard]] inline std::string json_escape(std::string_view text) {
  return obs::json_escape(text);
}

[[nodiscard]] inline std::string json_value(bool value) { return value ? "true" : "false"; }
template <typename T>
  requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
[[nodiscard]] std::string json_value(T value) {
  return std::to_string(value);
}
[[nodiscard]] inline std::string json_value(double value) { return obs::json_number(value); }
[[nodiscard]] inline std::string json_value(std::string_view value) {
  return '"' + json_escape(value) + '"';
}
[[nodiscard]] inline std::string json_value(const char* value) {
  return json_value(std::string_view{value});
}
[[nodiscard]] inline std::string json_value(const std::string& value) {
  return json_value(std::string_view{value});
}

/// Per-process record of one bench run: the name, the resolved config and
/// whichever key metrics the bench registers.  `finish_run` serializes it to
/// `BENCH_<name>.json` when the bench ran with --json.
class BenchRecord {
 public:
  [[nodiscard]] static BenchRecord& global() {
    static BenchRecord record;
    return record;
  }

  void begin(std::string name, std::string paper_ref) {
    name_ = std::move(name);
    paper_ref_ = std::move(paper_ref);
  }

  template <typename T>
  void config(std::string key, const T& value) {
    config_.emplace_back(std::move(key), json_value(value));
  }

  template <typename T>
  void metric(std::string key, const T& value) {
    metrics_.emplace_back(std::move(key), json_value(value));
  }

  /// Attaches a pre-rendered JSON object under a top-level key (after
  /// "metrics").  Benches with structured results beyond flat key/value
  /// metrics — e.g. bench_slo_serving's "slo" block — register them here.
  void block(std::string key, std::string raw_json_object) {
    blocks_.emplace_back(std::move(key), std::move(raw_json_object));
  }

  /// Run-identity fields for the "meta" header (scale preset + world seed;
  /// threads comes in via write_json, the timestamp is stamped at write).
  void set_run_meta(std::string scale, std::uint64_t seed) {
    meta_scale_ = std::move(scale);
    meta_seed_ = seed;
  }

  void set_build_seconds(double seconds) { build_seconds_ = seconds; }

  /// Route (prefix) count of the world, the denominator of
  /// memory.rss_per_route (set by build_world).
  void set_route_count(std::size_t count) { route_count_ = count; }

  /// `BENCH_fig9_video_loss.json` for `bench_fig9_video_loss`.
  [[nodiscard]] std::string output_path() const {
    std::string_view stem = name_;
    if (stem.starts_with("bench_")) stem.remove_prefix(6);
    return "BENCH_" + std::string{stem} + ".json";
  }

  /// `TRACE_fig9_video_loss.jsonl` for `bench_fig9_video_loss`.
  [[nodiscard]] std::string trace_output_path() const {
    std::string_view stem = name_;
    if (stem.starts_with("bench_")) stem.remove_prefix(6);
    return "TRACE_" + std::string{stem} + ".jsonl";
  }

  void write_json(std::ostream& out, double campaign_seconds, int threads) const {
    auto object = [&out](std::string_view key,
                         const std::vector<std::pair<std::string, std::string>>& fields) {
      out << "  \"" << key << "\": {";
      for (std::size_t i = 0; i < fields.size(); ++i) {
        out << (i ? ", " : "") << '"' << json_escape(fields[i].first)
            << "\": " << fields[i].second;
      }
      out << "}";
    };
    out << "{\n";
    out << "  \"name\": " << json_value(name_) << ",\n";
    out << "  \"paper_ref\": " << json_value(paper_ref_) << ",\n";
    // Run-identity header: enough to re-run the exact world (scale preset,
    // seed, thread count) plus when the artifact was produced.
    std::vector<std::pair<std::string, std::string>> meta;
    meta.emplace_back("scale", json_value(meta_scale_));
    meta.emplace_back("threads", json_value(threads));
    meta.emplace_back("seed", json_value(meta_seed_));
    meta.emplace_back("timestamp", json_value(obs::iso8601_utc_now()));
    object("meta", meta);
    out << ",\n";
    out << "  \"threads\": " << threads << ",\n";
    out << "  \"build_seconds\": " << json_value(build_seconds_) << ",\n";
    out << "  \"campaign_seconds\": " << json_value(campaign_seconds) << ",\n";
    object("config", config_);
    out << ",\n";
    object("metrics", metrics_);
    out << ",\n";
    for (const auto& [key, raw] : blocks_) {
      out << "  \"" << json_escape(key) << "\": " << raw << ",\n";
    }
    std::vector<std::pair<std::string, std::string>> counters;
    for (const auto& [name, value] : util::Counters::global().snapshot()) {
      counters.emplace_back(name, json_value(value));
    }
    object("counters", counters);
    out << ",\n";
    // Memory accounting: process peak RSS plus the control plane's interned
    // path-attribute table, so route-memory regressions show up in every
    // BENCH_*.json instead of only in the microbench.
    const auto attr = bgp::AttrTable::global().stats();
    std::vector<std::pair<std::string, std::string>> memory;
    const std::uint64_t rss_kb = peak_rss_kb();
    memory.emplace_back("peak_rss_kb", json_value(rss_kb));
    // Scale-normalized footprint: peak RSS bytes per routed prefix.  Lets
    // small / paper / full runs of the same bench compare directly and makes
    // per-route memory regressions visible at every tier.
    memory.emplace_back("rss_per_route",
                        json_value(route_count_ ? static_cast<double>(rss_kb) * 1024.0 /
                                                      static_cast<double>(route_count_)
                                                : 0.0));
    memory.emplace_back("routes", json_value(route_count_));
    memory.emplace_back("attr_unique_live", json_value(attr.unique_live));
    memory.emplace_back("attr_peak_unique", json_value(attr.peak_unique));
    memory.emplace_back("attr_live_refs", json_value(attr.live_refs));
    memory.emplace_back("attr_intern_calls", json_value(attr.intern_calls));
    memory.emplace_back("attr_intern_hits", json_value(attr.intern_hits));
    memory.emplace_back("attr_bytes_allocated", json_value(attr.bytes_allocated));
    memory.emplace_back("attr_bytes_requested", json_value(attr.bytes_requested));
    memory.emplace_back("attr_dedup_ratio", json_value(attr.dedup_ratio()));
    // Compiled data plane: live footprint of every FlatFib (per-viewpoint
    // resolution tables + the GeoIP fast path) and cumulative rebuild cost.
    const auto fib = net::FlatFibMetrics::global().snapshot();
    memory.emplace_back("fib",
                        "{\"entries\": " + json_value(fib.entries) +
                            ", \"spill_tables\": " + json_value(fib.spill_tables) +
                            ", \"bytes\": " + json_value(fib.bytes) +
                            ", \"rebuilds\": " + json_value(fib.rebuilds) +
                            ", \"full_rebuilds\": " + json_value(fib.full_rebuilds) +
                            ", \"patches\": " + json_value(fib.patches) +
                            ", \"slots_touched\": " + json_value(fib.slots_touched) +
                            ", \"build_seconds\": " + json_value(fib.build_seconds) +
                            ", \"full_build_seconds\": " + json_value(fib.full_build_seconds) +
                            ", \"patch_seconds\": " + json_value(fib.patch_seconds) + "}");
    object("memory", memory);
    out << ",\n";
    // Control-plane convergence engine: cumulative across every fabric this
    // process ran (world build plus any fault churn the bench injected).
    const auto conv = bgp::ConvergenceMetrics::global().snapshot();
    std::vector<std::pair<std::string, std::string>> convergence;
    convergence.emplace_back("runs", json_value(conv.runs));
    convergence.emplace_back("messages", json_value(conv.messages));
    convergence.emplace_back("batches", json_value(conv.batches));
    convergence.emplace_back("messages_per_sec", json_value(conv.messages_per_sec()));
    convergence.emplace_back("shard_limit", json_value(conv.shard_limit));
    convergence.emplace_back("shard_occupancy_mean", json_value(conv.mean_shard_occupancy()));
    convergence.emplace_back("shard_occupancy_max", json_value(conv.max_shards_occupied));
    convergence.emplace_back("max_batch_messages", json_value(conv.max_batch_messages));
    convergence.emplace_back("seconds", json_value(conv.seconds));
    object("convergence", convergence);
    out << ",\n";
    // Traffic engineering: the last load-assignment pass's utilization
    // picture plus cumulative offload-policy moves.  All-zero for benches
    // that never build a matrix — emitted unconditionally so the schema is
    // stable (tools/json_check requires the block in every BENCH json).
    const auto traffic = traffic::TrafficMetrics::global().snapshot();
    std::vector<std::pair<std::string, std::string>> traffic_fields;
    traffic_fields.emplace_back("assignments", json_value(traffic.assignments));
    traffic_fields.emplace_back("links_loaded", json_value(traffic.links_loaded));
    traffic_fields.emplace_back("util_p50", json_value(traffic.util_p50));
    traffic_fields.emplace_back("util_max", json_value(traffic.util_max));
    traffic_fields.emplace_back("offloaded_flows", json_value(traffic.offloaded_flows));
    traffic_fields.emplace_back("rejected_flows", json_value(traffic.rejected_flows));
    traffic_fields.emplace_back("wan_bytes_saved", json_value(traffic.wan_bytes_saved));
    object("traffic", traffic_fields);
    out << "\n}\n";
  }

 private:
  std::string name_, paper_ref_;
  std::vector<std::pair<std::string, std::string>> config_, metrics_, blocks_;
  std::string meta_scale_ = "paper";
  std::uint64_t meta_seed_ = 0;
  double build_seconds_ = 0.0;
  std::size_t route_count_ = 0;
};

/// Shorthand the benches use to register a key metric for the JSON record.
template <typename T>
inline void metric(std::string key, const T& value) {
  BenchRecord::global().metric(std::move(key), value);
}

/// Prints the standard bench header and opens the run record (every bench
/// calls this, directly or through `build_world`).
inline void begin_bench(const BenchArgs& args, const std::string& bench_name,
                        const std::string& paper_ref) {
  util::print_bench_header(std::cout, bench_name, paper_ref, args.seed);
  auto& record = BenchRecord::global();
  record.begin(bench_name, paper_ref);
  record.set_run_meta(std::string{topo::to_string(args.scale)}, args.seed);
  record.config("small", args.small);
  record.config("scale", topo::to_string(args.scale));
  record.config("seed", args.seed);
  record.config("days", args.days);
  record.config("threads", util::resolve_thread_count(args.threads));
}

/// Builds the workbench, timing and reporting construction.
inline std::unique_ptr<measure::Workbench> build_world(const BenchArgs& args,
                                                       const std::string& bench_name,
                                                       const std::string& paper_ref) {
  begin_bench(args, bench_name, paper_ref);
  const auto t0 = std::chrono::steady_clock::now();
  auto world = measure::Workbench::build(args.workbench_config());
  const auto elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  std::cout << "world: " << world->internet().as_count() << " ASes, "
            << world->internet().prefix_count() << " prefixes, "
            << world->vns().fabric().neighbor_count() << " eBGP sessions (built in "
            << util::format_double(elapsed, 1) << " s)\n\n";
  util::Counters::global().set("bgp.messages_delivered",
                               world->vns().fabric().messages_delivered());
  auto& record = BenchRecord::global();
  record.set_build_seconds(elapsed);
  record.set_route_count(world->internet().prefix_count());
  record.config("ases", world->internet().as_count());
  record.config("prefixes", world->internet().prefix_count());
  record.config("ebgp_sessions", world->vns().fabric().neighbor_count());
  return world;
}

/// Prints the work-counter snapshot and campaign wall-clock, the trailing
/// block every bench emits so the engine's perf trajectory stays observable.
inline void print_run_counters(std::ostream& out, const BenchArgs& args,
                               double campaign_seconds) {
  out << "\nthreads: " << util::resolve_thread_count(args.threads)
      << ", campaign wall-clock: " << util::format_double(campaign_seconds, 2) << " s\n";
  util::Counters::global().print(out);
}

/// The standard bench epilogue: counter snapshot on stdout, plus the
/// machine-readable BENCH_<name>.json when the bench ran with --json and
/// TRACE_<name>.jsonl (metrics registry + fabric trace) when it ran with
/// --trace.
inline void finish_run(const BenchArgs& args, double campaign_seconds) {
  print_run_counters(std::cout, args, campaign_seconds);
  if (args.json) {
    const auto path = BenchRecord::global().output_path();
    std::ofstream out{path};
    BenchRecord::global().write_json(out, campaign_seconds,
                                     util::resolve_thread_count(args.threads));
    std::cout << "wrote " << path << "\n";
  }
  if (args.trace) {
    const auto path = BenchRecord::global().trace_output_path();
    std::ofstream out{path};
    // Same run-identity header as the BENCH json, as the first line, so a
    // trace file is self-describing even when separated from its json.
    out << "{\"type\":\"run_meta\",\"scale\":"
        << obs::json_string(topo::to_string(args.scale))
        << ",\"threads\":" << util::resolve_thread_count(args.threads)
        << ",\"seed\":" << args.seed << ",\"timestamp\":"
        << obs::json_string(obs::iso8601_utc_now()) << "}\n";
    obs::MetricsRegistry::global().write_jsonl(out);
    trace_sink().write_jsonl(out);
    std::cout << "wrote " << path << "\n";
  }
}

}  // namespace vns::bench
