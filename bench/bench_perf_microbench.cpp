// Performance microbenchmarks (google-benchmark) for the hot paths: the
// routing-table trie, great-circle math, the BGP decision process,
// Gao–Rexford route computation, path-model sampling, and full fabric
// convergence per announced prefix, and incremental FIB patching vs a full
// recompile at full-table scale — plus the observability paths: fabric
// convergence with tracing off vs on (the off variant is the zero-cost
// claim's evidence), counter batching, trace-sink record, and provenance.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bgp/decision.hpp"
#include "bgp/fabric.hpp"
#include "core/vns_network.hpp"
#include "geo/geo.hpp"
#include "geo/geoip.hpp"
#include "measure/workbench.hpp"
#include "net/flat_fib.hpp"
#include "net/prefix_trie.hpp"
#include "obs/trace.hpp"
#include "sim/path_model.hpp"
#include "topo/internet.hpp"
#include "topo/segments.hpp"
#include "util/arena.hpp"
#include "util/counters.hpp"
#include "util/rng.hpp"

using namespace vns;

namespace {

void BM_TrieLongestMatch(benchmark::State& state) {
  net::PrefixTrie<int> trie;
  util::Rng rng{1};
  for (int i = 0; i < 100000; ++i) {
    trie.insert(net::Ipv4Prefix{net::Ipv4Address{static_cast<std::uint32_t>(rng())},
                                static_cast<std::uint8_t>(rng.uniform_int(8, 24))},
                i);
  }
  std::uint32_t q = 0x01020304;
  for (auto _ : state) {
    q = q * 1664525u + 1013904223u;
    benchmark::DoNotOptimize(trie.longest_match(net::Ipv4Address{q}));
  }
}
BENCHMARK(BM_TrieLongestMatch);

void BM_GreatCircle(benchmark::State& state) {
  const geo::GeoPoint a{52.37, 4.90}, b{-33.87, 151.21};
  for (auto _ : state) benchmark::DoNotOptimize(geo::great_circle_km(a, b));
}
BENCHMARK(BM_GreatCircle);

void BM_DecisionSelectBest(benchmark::State& state) {
  std::vector<bgp::Route> candidates;
  util::Rng rng{2};
  for (int i = 0; i < 24; ++i) {
    bgp::Route route;
    route.prefix = net::Ipv4Prefix{net::Ipv4Address{0x0A000000}, 16};
    bgp::Attributes attrs;
    attrs.local_pref = static_cast<std::uint32_t>(rng.uniform_int(100, 1000));
    std::vector<net::Asn> path;
    for (int h = 0; h < static_cast<int>(rng.uniform_int(1, 5)); ++h) {
      path.push_back(static_cast<net::Asn>(rng.uniform_int(1000, 4000)));
    }
    attrs.as_path = bgp::AsPath{std::move(path)};
    route.set_attrs(std::move(attrs));
    route.egress = static_cast<bgp::RouterId>(i);
    route.advertiser = static_cast<bgp::RouterId>(i);
    route.learned_via_ebgp = i % 2;
    candidates.push_back(std::move(route));
  }
  const bgp::DecisionContext ctx{0, nullptr};
  for (auto _ : state) benchmark::DoNotOptimize(bgp::select_best(candidates, ctx));
}
BENCHMARK(BM_DecisionSelectBest);

void BM_GaoRexfordRoutesTo(benchmark::State& state) {
  topo::InternetConfig config;
  config.ltp_count = 8;
  config.stp_count = 120;
  config.cahp_count = 240;
  config.ec_count = 600;
  const auto internet = topo::Internet::generate(config);
  topo::AsIndex dest = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(internet.routes_to(dest));
    dest = (dest + 17) % static_cast<topo::AsIndex>(internet.as_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(internet.as_count()));
}
BENCHMARK(BM_GaoRexfordRoutesTo);

void BM_PathModelSampleLosses(benchmark::State& state) {
  const auto catalog = topo::SegmentCatalog::paper_calibrated();
  std::vector<sim::SegmentProfile> segments;
  const geo::GeoPoint ams{52.37, 4.90}, sin{1.35, 103.82};
  segments.push_back(catalog.transit_hop(ams, sin, topo::RegionClass::kEU,
                                         topo::RegionClass::kAP));
  segments.push_back(catalog.last_mile(topo::AsType::kCAHP,
                                       geo::WorldRegion::kAsiaPacific, sin));
  const sim::PathModel path{std::move(segments), 86400.0, util::Rng{3}};
  util::Rng rng{4};
  double t = 0.0;
  for (auto _ : state) {
    t += 1.0;
    benchmark::DoNotOptimize(path.sample_losses(t, 2000, rng));
  }
}
BENCHMARK(BM_PathModelSampleLosses);

/// The satellite pair for the DiurnalLevelCache: repeated loss_probability
/// queries at the *same* timestamp — the prober/session access pattern — with
/// and without the per-(segment, t) memo.  Identical paths, identical
/// results; the delta is the cost of recomputing the diurnal level stack.
std::vector<sim::SegmentProfile> loss_bench_segments() {
  const auto catalog = topo::SegmentCatalog::paper_calibrated();
  std::vector<sim::SegmentProfile> segments;
  const geo::GeoPoint ams{52.37, 4.90}, sin{1.35, 103.82};
  segments.push_back(catalog.transit_hop(ams, sin, topo::RegionClass::kEU,
                                         topo::RegionClass::kAP));
  segments.push_back(catalog.last_mile(topo::AsType::kCAHP,
                                       geo::WorldRegion::kAsiaPacific, sin));
  segments.push_back(catalog.vns_link(ams, sin, /*long_haul=*/true));
  return segments;
}

void BM_PathLossUncached(benchmark::State& state) {
  const sim::PathModel path{loss_bench_segments(), 86400.0, util::Rng{3}};
  double t = 43200.0;
  std::size_t i = 0;
  for (auto _ : state) {
    if (++i % 64 == 0) t += 1.0;  // a new timestamp every 64 queries
    benchmark::DoNotOptimize(path.loss_probability(t));
  }
}
BENCHMARK(BM_PathLossUncached);

void BM_PathLossCached(benchmark::State& state) {
  const sim::PathModel path{loss_bench_segments(), 86400.0, util::Rng{3}};
  sim::DiurnalLevelCache cache;
  double t = 43200.0;
  std::size_t i = 0;
  for (auto _ : state) {
    if (++i % 64 == 0) t += 1.0;
    benchmark::DoNotOptimize(path.loss_probability(t, cache));
  }
}
BENCHMARK(BM_PathLossCached);

/// Announce-and-converge loop shared by the traced and untraced variants so
/// the only difference the pair measures is the sink itself.
void run_fabric_convergence(benchmark::State& state, obs::TraceSink* sink) {
  // Cost of announcing + converging one prefix through a 4-router RR fabric.
  bgp::Fabric fabric{65000};
  const auto a = fabric.add_router("A");
  const auto b = fabric.add_router("B");
  const auto c = fabric.add_router("C");
  const auto rr = fabric.add_router("RR");
  for (auto client : {a, b, c}) {
    fabric.add_rr_client_session(rr, client);
    fabric.router(client).set_advertise_best_external(true);
  }
  fabric.add_igp_link(a, b, 10);
  fabric.add_igp_link(b, c, 10);
  fabric.add_igp_link(a, rr, 1);
  const auto up_a = fabric.add_neighbor(a, 174, bgp::NeighborKind::kUpstream, "upA");
  const auto up_c = fabric.add_neighbor(c, 3356, bgp::NeighborKind::kUpstream, "upC");
  fabric.set_trace(sink);

  std::uint32_t block = 1;
  for (auto _ : state) {
    const net::Ipv4Prefix prefix{net::Ipv4Address{(block++ % 60000u + 1024u) << 12}, 20};
    bgp::Attributes attrs;
    attrs.as_path = bgp::AsPath{{174, 400}};
    fabric.announce(up_a, prefix, attrs);
    bgp::Attributes attrs2;
    attrs2.as_path = bgp::AsPath{{3356, 401}};
    fabric.announce(up_c, prefix, attrs2);
    benchmark::DoNotOptimize(fabric.run_to_convergence());
  }
}

void BM_FabricAnnouncementConvergence(benchmark::State& state) {
  // Tracing disabled: the baseline the ≤1 % overhead budget is judged against.
  run_fabric_convergence(state, nullptr);
}
BENCHMARK(BM_FabricAnnouncementConvergence);

void BM_FabricAnnouncementConvergenceTraced(benchmark::State& state) {
  // Same fabric with a ring-buffer sink attached: the cost of full tracing.
  obs::TraceSink sink{1u << 16};
  run_fabric_convergence(state, &sink);
}
BENCHMARK(BM_FabricAnnouncementConvergenceTraced);

/// Churn-and-converge loop shared by the serial and sharded variants: a
/// wider fabric (8 RR clients, 2 upstreams per client) announcing prefix
/// blocks so each batch spreads across many shards.  The pair's ratio is
/// the sharded engine's throughput claim; results are bit-identical for
/// any thread count, so only wall-clock may differ.
void run_sharded_convergence(benchmark::State& state, int threads) {
  bgp::Fabric fabric{65000};
  const auto rr = fabric.add_router("RR");
  std::vector<bgp::NeighborId> uplinks;
  for (int i = 0; i < 8; ++i) {
    const auto client = fabric.add_router("C" + std::to_string(i));
    fabric.add_rr_client_session(rr, client);
    fabric.add_igp_link(rr, client, 10 + i);
    uplinks.push_back(fabric.add_neighbor(client, static_cast<net::Asn>(100 + i),
                                          bgp::NeighborKind::kUpstream,
                                          "up" + std::to_string(i)));
  }
  fabric.set_threads(threads);

  std::uint32_t block = 1;
  for (auto _ : state) {
    for (std::uint32_t p = 0; p < 16; ++p) {
      const net::Ipv4Prefix prefix{
          net::Ipv4Address{((block * 16u + p) % 60000u + 1024u) << 12}, 20};
      bgp::Attributes attrs;
      attrs.as_path = bgp::AsPath{{static_cast<net::Asn>(100 + p % 8),
                                   static_cast<net::Asn>(4000 + p)}};
      fabric.announce(uplinks[p % uplinks.size()], prefix, attrs);
    }
    ++block;
    benchmark::DoNotOptimize(fabric.run_to_convergence());
  }
  const auto stats = fabric.convergence_stats();
  state.SetItemsProcessed(static_cast<std::int64_t>(stats.messages));
  state.counters["msgs_per_sec"] =
      benchmark::Counter(static_cast<double>(stats.messages),
                         benchmark::Counter::kIsRate);
  state.counters["shard_occupancy_mean"] = stats.mean_shard_occupancy();
}

void BM_ConvergenceSerial(benchmark::State& state) {
  // threads=1: the inline drain, same batch algorithm, no pool hand-off.
  run_sharded_convergence(state, 1);
}
BENCHMARK(BM_ConvergenceSerial);

void BM_ConvergenceSharded(benchmark::State& state) {
  // threads=4: per-shard worklists processed across the pool.
  run_sharded_convergence(state, 4);
}
BENCHMARK(BM_ConvergenceSharded);

void BM_TraceSinkRecord(benchmark::State& state) {
  obs::TraceSink sink{1u << 16};
  obs::TraceEvent event;
  event.kind = obs::TraceEventKind::kUpdateDelivered;
  event.a = 1;
  event.b = 2;
  event.prefix = net::Ipv4Prefix{net::Ipv4Address{0x0A000000}, 20};
  std::uint64_t when = 0;
  for (auto _ : state) {
    event.when = when++;
    sink.record(event);
    benchmark::DoNotOptimize(sink.size());
  }
}
BENCHMARK(BM_TraceSinkRecord);

void BM_DecisionTraceExplain(benchmark::State& state) {
  // Provenance over the same 24-candidate set BM_DecisionSelectBest uses.
  std::vector<bgp::Route> candidates;
  util::Rng rng{2};
  for (int i = 0; i < 24; ++i) {
    bgp::Route route;
    route.prefix = net::Ipv4Prefix{net::Ipv4Address{0x0A000000}, 16};
    bgp::Attributes attrs;
    attrs.local_pref = static_cast<std::uint32_t>(rng.uniform_int(100, 1000));
    std::vector<net::Asn> path;
    for (int h = 0; h < static_cast<int>(rng.uniform_int(1, 5)); ++h) {
      path.push_back(static_cast<net::Asn>(rng.uniform_int(1000, 4000)));
    }
    attrs.as_path = bgp::AsPath{std::move(path)};
    route.set_attrs(std::move(attrs));
    route.egress = static_cast<bgp::RouterId>(i);
    route.advertiser = static_cast<bgp::RouterId>(i);
    route.learned_via_ebgp = i % 2;
    candidates.push_back(std::move(route));
  }
  const bgp::DecisionContext ctx{0, nullptr};
  for (auto _ : state) benchmark::DoNotOptimize(bgp::trace_decision(candidates, ctx));
}
BENCHMARK(BM_DecisionTraceExplain);

// --- route-copy cost: interned flyweight vs materialized attributes --------

/// The pre-interning Route layout: attributes owned by value, deep-copied on
/// every RIB insert/emission.  Kept here as the microbench baseline.
struct MaterializedRoute {
  net::Ipv4Prefix prefix;
  bgp::Attributes attrs;
  bgp::RouterId egress = bgp::kInvalidRouter;
  bgp::NeighborId neighbor = bgp::kNoNeighbor;
  bool learned_via_ebgp = false;
  bgp::RouterId advertiser = bgp::kInvalidRouter;
};

bgp::Attributes make_fanout_attrs(int i) {
  // Shaped like a real VNS table entry: 6-hop path, a couple of communities,
  // one reflection cluster.
  bgp::Attributes attrs;
  attrs.local_pref = 300;
  attrs.as_path = bgp::AsPath{{174, 3356, 1299, 2914, 6453,
                               static_cast<net::Asn>(64512 + i % 4)}};
  attrs.add_community(0x00010001);
  attrs.add_community(0x00010002);
  attrs.originator_id = 1;
  attrs.cluster_list.push_back(9);
  return attrs;
}

void BM_RouteCopyInterned(benchmark::State& state) {
  // 24 routes sharing 4 attribute sets, like an RR fan-out: copying the
  // vector bumps refcounts instead of duplicating paths.
  std::vector<bgp::Route> routes(24);
  for (int i = 0; i < 24; ++i) {
    routes[i].prefix = net::Ipv4Prefix{net::Ipv4Address{0x0A000000u + static_cast<std::uint32_t>(i) * 0x10000u}, 16};
    routes[i].set_attrs(make_fanout_attrs(i));
    routes[i].egress = static_cast<bgp::RouterId>(i);
  }
  for (auto _ : state) {
    std::vector<bgp::Route> copy = routes;
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 24 *
                          static_cast<std::int64_t>(sizeof(bgp::Route)));
}
BENCHMARK(BM_RouteCopyInterned);

void BM_RouteCopyMaterialized(benchmark::State& state) {
  // Same 24 routes with owned attributes: every copy re-allocates the path,
  // community and cluster vectors.
  std::vector<MaterializedRoute> routes(24);
  std::int64_t per_route_bytes = 0;
  for (int i = 0; i < 24; ++i) {
    routes[i].prefix = net::Ipv4Prefix{net::Ipv4Address{0x0A000000u + static_cast<std::uint32_t>(i) * 0x10000u}, 16};
    routes[i].attrs = make_fanout_attrs(i);
    routes[i].egress = static_cast<bgp::RouterId>(i);
    per_route_bytes += static_cast<std::int64_t>(
        sizeof(MaterializedRoute) - sizeof(bgp::Attributes) +
        bgp::attribute_bytes(routes[i].attrs));
  }
  for (auto _ : state) {
    std::vector<MaterializedRoute> copy = routes;
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * per_route_bytes);
}
BENCHMARK(BM_RouteCopyMaterialized);

/// Attribute bytes the convergence loop materializes, interned vs the
/// per-copy model.  Both variants run the identical 4-router RR convergence
/// workload; the AttrTable byte counters compare what interning allocated
/// (`bytes_allocated` delta) against what owned-attribute storage would have
/// built for the same intern requests (`bytes_requested` delta).  The
/// interned/copied ratio is the ≥30 % route-copy-byte reduction claim.
void run_convergence_attr_bytes(benchmark::State& state, bool interned) {
  const auto before = bgp::AttrTable::global().stats();
  run_fabric_convergence(state, nullptr);
  const auto after = bgp::AttrTable::global().stats();
  const auto allocated = after.bytes_allocated - before.bytes_allocated;
  const auto requested = after.bytes_requested - before.bytes_requested;
  state.SetBytesProcessed(static_cast<std::int64_t>(interned ? allocated : requested));
  state.counters["attr_bytes_per_iter"] = benchmark::Counter(
      static_cast<double>(interned ? allocated : requested),
      benchmark::Counter::kAvgIterations);
  if (interned && requested > 0) {
    state.counters["dedup_savings"] =
        1.0 - static_cast<double>(allocated) / static_cast<double>(requested);
  }
}

void BM_ConvergenceAttrBytesInterned(benchmark::State& state) {
  run_convergence_attr_bytes(state, /*interned=*/true);
}
BENCHMARK(BM_ConvergenceAttrBytesInterned);

void BM_ConvergenceAttrBytesCopied(benchmark::State& state) {
  run_convergence_attr_bytes(state, /*interned=*/false);
}
BENCHMARK(BM_ConvergenceAttrBytesCopied);

// --- data-plane resolution: RIB walk vs compiled FIB ------------------------

/// The paper-scale world (all known prefixes, 11 PoPs) shared by the
/// resolution and GeoIP pairs; built once, on first use.
measure::Workbench& resolve_world() {
  static std::unique_ptr<measure::Workbench> world =
      measure::Workbench::build(measure::WorkbenchConfig::paper_scale(1));
  return *world;
}

/// Deterministic address stream over the world's announced prefixes: every
/// query hits a known prefix, like the figure benches' probe loops.
net::Ipv4Address resolve_query(const measure::Workbench& w, std::uint32_t& lcg) {
  lcg = lcg * 1664525u + 1013904223u;
  const auto& prefixes = w.internet().prefixes();
  return prefixes[lcg % prefixes.size()].prefix.first_host();
}

void BM_ResolveTrie(benchmark::State& state) {
  // The pre-FIB data plane: PrefixTrie LPM over known_prefixes_, then the
  // viewpoint router's Loc-RIB hash, then the egress-router -> PoP map.
  auto& w = resolve_world();
  const auto& vns = w.vns();
  const auto& fabric = vns.fabric();
  std::uint32_t lcg = 0x01020304;
  core::PopId viewpoint = 0;
  for (auto _ : state) {
    const auto address = resolve_query(w, lcg);
    viewpoint = (viewpoint + 1) % static_cast<core::PopId>(vns.pops().size());
    std::optional<core::PopId> pop;
    if (const auto prefix = vns.match_prefix(address)) {
      const bgp::Route* route =
          fabric.router(vns.pop(viewpoint).routers[0]).best_route(*prefix);
      if (route != nullptr) {
        const core::PopId p = vns.pop_of_router(route->egress);
        if (p != core::kNoPop) pop = p;
      }
    }
    benchmark::DoNotOptimize(pop);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ResolveTrie);

void BM_ResolveFib(benchmark::State& state) {
  // Same queries through the compiled per-viewpoint FIB: one lookup answers
  // {matched prefix, best route, egress PoP}.
  auto& w = resolve_world();
  const auto& vns = w.vns();
  // Warm every viewpoint's FIB so the loop measures probes, not compiles.
  for (core::PopId p = 0; p < vns.pops().size(); ++p) {
    benchmark::DoNotOptimize(vns.egress_pop(p, net::Ipv4Address{0x01000000u}));
  }
  std::uint32_t lcg = 0x01020304;
  core::PopId viewpoint = 0;
  for (auto _ : state) {
    const auto address = resolve_query(w, lcg);
    viewpoint = (viewpoint + 1) % static_cast<core::PopId>(vns.pops().size());
    benchmark::DoNotOptimize(vns.egress_pop(viewpoint, address));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ResolveFib);

void BM_GeoIpTrie(benchmark::State& state) {
  // GeoIP resolution through the reference trie walk.
  auto& w = resolve_world();
  std::uint32_t lcg = 0xdeadbeef;
  for (auto _ : state) {
    const auto address = resolve_query(w, lcg);
    benchmark::DoNotOptimize(w.geoip().lookup_uncompiled(address));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GeoIpTrie);

void BM_GeoIpFib(benchmark::State& state) {
  // Same lookups through the database's compiled FIB fast path.
  auto& w = resolve_world();
  benchmark::DoNotOptimize(w.geoip().lookup(net::Ipv4Address{0x01000000u}));  // warm
  std::uint32_t lcg = 0xdeadbeef;
  for (auto _ : state) {
    const auto address = resolve_query(w, lcg);
    benchmark::DoNotOptimize(w.geoip().lookup(address));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_GeoIpFib);

// --- incremental FIB patching vs full recompile -----------------------------

/// A synthetic full table at the `--scale full` size: the /16 pool runs out
/// partway through so the tail is /20s, exercising the spill tables exactly
/// like topo::Internet's allocator cascade does.
std::vector<net::FlatFib::Leaf> make_full_table(std::uint32_t count) {
  std::vector<net::FlatFib::Leaf> leaves;
  leaves.reserve(count);
  std::uint32_t b16 = 11, s20 = 0, s24 = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (b16 <= 0xffffu) {
      leaves.push_back({net::Ipv4Prefix{net::Ipv4Address{b16 << 16}, 16}, i});
      ++b16;
      if ((b16 >> 8) == 127) b16 = 128 << 8;
    } else if (s20 < 10u * 256u * 16u) {
      leaves.push_back({net::Ipv4Prefix{net::Ipv4Address{(1u << 24) + (s20 << 12)}, 20}, i});
      ++s20;
    } else {
      leaves.push_back({net::Ipv4Prefix{net::Ipv4Address{s24 << 8}, 24}, i});
      ++s24;
    }
  }
  return leaves;
}

/// Routes changed per churn event: a realistic convergence batch touches a
/// handful of prefixes out of the 100k-entry table.
constexpr int kChurnPerEvent = 64;
constexpr std::uint32_t kFullTableSize = 100000;

void BM_FibPatch(benchmark::State& state) {
  // One churn event via the RIB-delta path: patch only the changed leaves.
  const auto leaves = make_full_table(kFullTableSize);
  net::FlatFib fib = net::FlatFib::compile(leaves.begin(), leaves.end(), leaves.size());
  std::vector<net::FlatFib::Leaf> deltas(kChurnPerEvent);
  std::uint32_t lcg = 0x12345678;
  for (auto _ : state) {
    for (auto& delta : deltas) {
      lcg = lcg * 1664525u + 1013904223u;
      const auto& leaf = leaves[lcg % leaves.size()];
      delta = {leaf.prefix, leaf.value ^ 1u};
    }
    benchmark::DoNotOptimize(fib.patch(deltas));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["routes_per_event"] = kChurnPerEvent;
}

void BM_FibFullRebuild(benchmark::State& state) {
  // Same churn event through the old contract: recompile all 100k leaves.
  auto leaves = make_full_table(kFullTableSize);
  std::uint32_t lcg = 0x12345678;
  for (auto _ : state) {
    for (int k = 0; k < kChurnPerEvent; ++k) {
      lcg = lcg * 1664525u + 1013904223u;
      leaves[lcg % leaves.size()].value ^= 1u;
    }
    net::FlatFib fib = net::FlatFib::compile(leaves.begin(), leaves.end(), leaves.size());
    benchmark::DoNotOptimize(fib.lookup(net::Ipv4Address{11u << 16}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["routes_per_event"] = kChurnPerEvent;
}

BENCHMARK(BM_FibPatch);
BENCHMARK(BM_FibFullRebuild);

// --- serial vs sharded FIB compilation --------------------------------------

void compile_with_threads(benchmark::State& state, int threads) {
  const auto leaves = make_full_table(kFullTableSize);
  const int saved = net::FlatFib::compile_threads();
  net::FlatFib::set_compile_threads(threads);
  for (auto _ : state) {
    net::FlatFib fib = net::FlatFib::compile(leaves.begin(), leaves.end(), leaves.size());
    benchmark::DoNotOptimize(fib.lookup(net::Ipv4Address{11u << 16}));
  }
  net::FlatFib::set_compile_threads(saved);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kFullTableSize);
  state.counters["threads"] = threads;
}

void BM_FibCompileSerial(benchmark::State& state) {
  // Full-table compile on one thread: the pre-sharding baseline.
  compile_with_threads(state, 1);
}

void BM_FibCompileParallel(benchmark::State& state) {
  // Same compile sharded over 4 workers; output is byte-identical (the
  // Fib.ParallelCompileBitIdentical fuzz enforces it), so the delta is pure
  // speedup.  On a 1-CPU container the workers serialize and this reports
  // ~parity — see DESIGN §15 for the caveat.
  compile_with_threads(state, 4);
}

BENCHMARK(BM_FibCompileSerial);
BENCHMARK(BM_FibCompileParallel);

// --- heap-backed vs arena-backed RIB maps -----------------------------------

/// Route-churn workload over a Loc-RIB-shaped map: insert a full-table's
/// worth of entries, then flap a subset, exactly the allocation pattern the
/// fabric's adj-RIBs see during feed + convergence churn.
template <typename Map>
void rib_churn(benchmark::State& state, Map& map,
               const std::vector<net::FlatFib::Leaf>& leaves) {
  for (auto _ : state) {
    map.clear();
    for (const auto& leaf : leaves) map[leaf.prefix] = leaf.value;
    std::uint32_t lcg = 0xabcdef01;
    for (int k = 0; k < 4096; ++k) {
      lcg = lcg * 1664525u + 1013904223u;
      const auto& leaf = leaves[lcg % leaves.size()];
      map.erase(leaf.prefix);
      map[leaf.prefix] = leaf.value ^ 1u;
    }
    benchmark::DoNotOptimize(map.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(leaves.size()));
}

void BM_FeedRoutesHeap(benchmark::State& state) {
  // Per-node heap allocation: what the router RIBs did before the arena.
  const auto leaves = make_full_table(20000);
  std::unordered_map<net::Ipv4Prefix, std::uint32_t> map;
  rib_churn(state, map, leaves);
}

void BM_FeedRoutesArena(benchmark::State& state) {
  // Bump-pointer arena with per-size freelists: node frees recycle in place.
  const auto leaves = make_full_table(20000);
  util::Arena arena;
  std::unordered_map<net::Ipv4Prefix, std::uint32_t, std::hash<net::Ipv4Prefix>,
                     std::equal_to<net::Ipv4Prefix>,
                     util::ArenaAllocator<std::pair<const net::Ipv4Prefix, std::uint32_t>>>
      map{util::ArenaAllocator<std::pair<const net::Ipv4Prefix, std::uint32_t>>{arena}};
  rib_churn(state, map, leaves);
  state.counters["arena_reserved_kb"] =
      static_cast<double>(arena.stats().reserved_bytes) / 1024.0;
}

BENCHMARK(BM_FeedRoutesHeap);
BENCHMARK(BM_FeedRoutesArena);

void BM_CountersGlobalAdd(benchmark::State& state) {
  // One mutex round-trip per increment: what the hot loops used to do.
  util::Counters counters;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) counters.add("bench.increment", 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_CountersGlobalAdd);

void BM_CountersBatchAdd(benchmark::State& state) {
  // Thread-local accumulation, one merge on scope exit: the Batch path.
  util::Counters counters;
  for (auto _ : state) {
    util::Counters::Batch batch{counters};
    for (int i = 0; i < 64; ++i) batch.add("bench.increment", 1);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_CountersBatchAdd);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): the repo-wide bench convention
// accepts --json (bench_smoke passes it everywhere), which google-benchmark
// would reject as unrecognized.  Translate it to the native JSON reporter.
int main(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  for (auto& arg : args) {
    if (arg == "--json") arg = "--benchmark_format=json";
  }
  std::vector<char*> argp;
  argp.reserve(args.size());
  for (auto& arg : args) argp.push_back(arg.data());
  int benchmark_argc = static_cast<int>(argp.size());
  benchmark::Initialize(&benchmark_argc, argp.data());
  if (benchmark::ReportUnrecognizedArguments(benchmark_argc, argp.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
