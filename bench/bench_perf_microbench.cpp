// Performance microbenchmarks (google-benchmark) for the hot paths: the
// routing-table trie, great-circle math, the BGP decision process,
// Gao–Rexford route computation, path-model sampling, and full fabric
// convergence per announced prefix.
#include <benchmark/benchmark.h>

#include "bgp/decision.hpp"
#include "bgp/fabric.hpp"
#include "geo/geo.hpp"
#include "net/prefix_trie.hpp"
#include "sim/path_model.hpp"
#include "topo/internet.hpp"
#include "topo/segments.hpp"
#include "util/rng.hpp"

using namespace vns;

namespace {

void BM_TrieLongestMatch(benchmark::State& state) {
  net::PrefixTrie<int> trie;
  util::Rng rng{1};
  for (int i = 0; i < 100000; ++i) {
    trie.insert(net::Ipv4Prefix{net::Ipv4Address{static_cast<std::uint32_t>(rng())},
                                static_cast<std::uint8_t>(rng.uniform_int(8, 24))},
                i);
  }
  std::uint32_t q = 0x01020304;
  for (auto _ : state) {
    q = q * 1664525u + 1013904223u;
    benchmark::DoNotOptimize(trie.longest_match(net::Ipv4Address{q}));
  }
}
BENCHMARK(BM_TrieLongestMatch);

void BM_GreatCircle(benchmark::State& state) {
  const geo::GeoPoint a{52.37, 4.90}, b{-33.87, 151.21};
  for (auto _ : state) benchmark::DoNotOptimize(geo::great_circle_km(a, b));
}
BENCHMARK(BM_GreatCircle);

void BM_DecisionSelectBest(benchmark::State& state) {
  std::vector<bgp::Route> candidates;
  util::Rng rng{2};
  for (int i = 0; i < 24; ++i) {
    bgp::Route route;
    route.prefix = net::Ipv4Prefix{net::Ipv4Address{0x0A000000}, 16};
    route.attrs.local_pref = static_cast<std::uint32_t>(rng.uniform_int(100, 1000));
    std::vector<net::Asn> path;
    for (int h = 0; h < static_cast<int>(rng.uniform_int(1, 5)); ++h) {
      path.push_back(static_cast<net::Asn>(rng.uniform_int(1000, 4000)));
    }
    route.attrs.as_path = bgp::AsPath{std::move(path)};
    route.egress = static_cast<bgp::RouterId>(i);
    route.advertiser = static_cast<bgp::RouterId>(i);
    route.learned_via_ebgp = i % 2;
    candidates.push_back(std::move(route));
  }
  const bgp::DecisionContext ctx{0, nullptr};
  for (auto _ : state) benchmark::DoNotOptimize(bgp::select_best(candidates, ctx));
}
BENCHMARK(BM_DecisionSelectBest);

void BM_GaoRexfordRoutesTo(benchmark::State& state) {
  topo::InternetConfig config;
  config.ltp_count = 8;
  config.stp_count = 120;
  config.cahp_count = 240;
  config.ec_count = 600;
  const auto internet = topo::Internet::generate(config);
  topo::AsIndex dest = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(internet.routes_to(dest));
    dest = (dest + 17) % static_cast<topo::AsIndex>(internet.as_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(internet.as_count()));
}
BENCHMARK(BM_GaoRexfordRoutesTo);

void BM_PathModelSampleLosses(benchmark::State& state) {
  const auto catalog = topo::SegmentCatalog::paper_calibrated();
  std::vector<sim::SegmentProfile> segments;
  const geo::GeoPoint ams{52.37, 4.90}, sin{1.35, 103.82};
  segments.push_back(catalog.transit_hop(ams, sin, topo::RegionClass::kEU,
                                         topo::RegionClass::kAP));
  segments.push_back(catalog.last_mile(topo::AsType::kCAHP,
                                       geo::WorldRegion::kAsiaPacific, sin));
  const sim::PathModel path{std::move(segments), 86400.0, util::Rng{3}};
  util::Rng rng{4};
  double t = 0.0;
  for (auto _ : state) {
    t += 1.0;
    benchmark::DoNotOptimize(path.sample_losses(t, 2000, rng));
  }
}
BENCHMARK(BM_PathModelSampleLosses);

void BM_FabricAnnouncementConvergence(benchmark::State& state) {
  // Cost of announcing + converging one prefix through a 4-router RR fabric.
  bgp::Fabric fabric{65000};
  const auto a = fabric.add_router("A");
  const auto b = fabric.add_router("B");
  const auto c = fabric.add_router("C");
  const auto rr = fabric.add_router("RR");
  for (auto client : {a, b, c}) {
    fabric.add_rr_client_session(rr, client);
    fabric.router(client).set_advertise_best_external(true);
  }
  fabric.add_igp_link(a, b, 10);
  fabric.add_igp_link(b, c, 10);
  fabric.add_igp_link(a, rr, 1);
  const auto up_a = fabric.add_neighbor(a, 174, bgp::NeighborKind::kUpstream, "upA");
  const auto up_c = fabric.add_neighbor(c, 3356, bgp::NeighborKind::kUpstream, "upC");

  std::uint32_t block = 1;
  for (auto _ : state) {
    const net::Ipv4Prefix prefix{net::Ipv4Address{(block++ % 60000u + 1024u) << 12}, 20};
    bgp::Attributes attrs;
    attrs.as_path = bgp::AsPath{{174, 400}};
    fabric.announce(up_a, prefix, attrs);
    bgp::Attributes attrs2;
    attrs2.as_path = bgp::AsPath{{3356, 401}};
    fabric.announce(up_c, prefix, attrs2);
    benchmark::DoNotOptimize(fabric.run_to_convergence());
  }
}
BENCHMARK(BM_FabricAnnouncementConvergence);

}  // namespace

BENCHMARK_MAIN();
