// Figure 6 — delay cost of cold-potato routing.
//
// Methodology (§4.3): one address per origin AS, probed for a week from the
// Singapore, Amsterdam and San Jose PoPs simultaneously through VNS (geo
// cold-potato: internal ride to the egress PoP, then out) and through the
// PoP's upstream transit (hot-potato local exit).  Plots the CDF of
// avg RTT(VNS) - avg RTT(upstream).
//
// Paper: VNS is as good or better in 10-65 % of cases (Singapore best at
// ~65 % thanks to its direct long-haul links); in 87-93 % of cases the
// stretch stays under 50 ms.
#include <iostream>

#include "bench/bench_common.hpp"
#include "measure/prober.hpp"
#include "sim/path_model.hpp"
#include "util/stats.hpp"

using namespace vns;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  auto world = bench::build_world(args, "bench_fig6_delay_difference",
                                  "Fig. 6 (RTT via VNS vs via upstream transit)");
  auto& w = *world;
  w.vns().set_geo_routing(true);
  util::Rng rng{args.seed ^ 0xf16'6ULL};
  measure::Prober prober{rng.fork("pings")};
  const int rounds = 8;  // scaled stand-in for 20 pings/day x 7 days

  const char* vantage_names[] = {"SIN", "AMS", "SJS"};
  util::TextTable table{{"client PoP", "targets", "VNS<=transit", "<=+20ms", "<=+50ms",
                         "median diff(ms)"}};
  for (const char* name : vantage_names) {
    const auto src = *w.vns().find_pop(name);
    std::vector<double> differences;

    for (topo::AsIndex origin = 0; origin < w.internet().as_count(); ++origin) {
      const auto& node = w.internet().as_at(origin);
      if (node.prefix_ids.empty()) continue;
      const std::size_t prefix_id = node.prefix_ids.front();  // one addr per AS
      const auto addr = w.internet().prefix(prefix_id).prefix.first_host();

      // Through upstream transit, exiting locally (hot potato).
      const auto upstream_path = w.probe_segments(src, prefix_id, true, /*upstreams_only=*/true);
      if (upstream_path.empty()) continue;
      // Through VNS: ride the overlay to the geo egress, exit there.
      const auto egress = w.vns().egress_pop(src, addr);
      if (!egress) continue;
      auto vns_path = w.vns().internal_segments(src, *egress, w.catalog());
      auto tail = w.probe_segments(*egress, prefix_id, true);
      vns_path.insert(vns_path.end(), tail.begin(), tail.end());

      const sim::PathModel transit{upstream_path, 0.0, util::Rng{args.seed ^ prefix_id * 2}};
      const sim::PathModel overlay{vns_path, 0.0, util::Rng{args.seed ^ (prefix_id * 2 + 1)}};
      util::Summary transit_rtt, overlay_rtt;
      for (int round = 0; round < rounds; ++round) {
        const double t = round * 3600.0 * 8.4;  // spread over a week
        const auto a = prober.ping(transit, t, 20);
        const auto b = prober.ping(overlay, t, 20);
        if (a.min_rtt_ms) transit_rtt.add(*a.min_rtt_ms);
        if (b.min_rtt_ms) overlay_rtt.add(*b.min_rtt_ms);
      }
      if (transit_rtt.empty() || overlay_rtt.empty()) continue;
      differences.push_back(overlay_rtt.mean() - transit_rtt.mean());
    }

    util::Percentiles p{std::vector<double>(differences)};
    bench::metric(std::string{name} + "_vns_not_worse", p.fraction_at_most(0.0));
    bench::metric(std::string{name} + "_median_diff_ms", p.median());
    table.add_row({name, std::to_string(differences.size()),
                   util::format_percent(p.fraction_at_most(0.0), 1),
                   util::format_percent(p.fraction_at_most(20.0), 1),
                   util::format_percent(p.fraction_at_most(50.0), 1),
                   util::format_double(p.median(), 1)});
  }
  std::cout << "Fig 6 - CDF of RTT(VNS cold potato) - RTT(upstream hot potato):\n";
  table.print(std::cout);
  std::cout << "paper: VNS <= transit in 10-65% of cases (Singapore ~65%); "
               "87-93% within +50 ms\n";
  w.vns().set_geo_routing(false);
  bench::finish_run(args, 0.0);
  return 0;
}
