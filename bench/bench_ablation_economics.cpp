// Ablation — VNS economics (the §6 cost discussion, quantified).
//
// Reproduces the paper's three economic claims:
//   1. the dedicated L2 links are the bulk of the total cost;
//   2. cold-potato routing raises long-haul utilization at no marginal cost
//      (the capacity is committed anyway), so it beats hot-potato once the
//      long-haul would otherwise ride premium transit;
//   3. the service achieves economies of scale: cost per Mbps falls as the
//      serviced volume grows.
#include <iostream>

#include "bench/bench_common.hpp"
#include "core/economics.hpp"

using namespace vns;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  bench::begin_bench(args, "bench_ablation_economics",
                     "ablation: VNS cost structure and economies of scale (S6)");
  auto config = args.workbench_config();
  config.feed_routes = false;  // topology is enough for the cost model
  auto world = measure::Workbench::build(config);
  const core::EconomicsModel model{world->vns()};

  // ---- cost breakdown at a working volume --------------------------------------
  core::TrafficProfile profile;
  profile.serviced_mbps = 2000.0;
  const auto breakdown = model.monthly_cost(profile);
  util::TextTable lines{{"cost item", "USD/month", "share"}};
  for (const auto& line : breakdown.lines) {
    lines.add_row({line.item, util::format_double(line.usd_monthly, 0),
                   util::format_percent(line.usd_monthly / breakdown.total_usd_monthly, 1)});
  }
  lines.add_row({"TOTAL", util::format_double(breakdown.total_usd_monthly, 0), "100.0%"});
  std::cout << "monthly cost at " << profile.serviced_mbps << " Mbps serviced:\n";
  lines.print(std::cout);
  std::cout << "L2 share: " << util::format_percent(breakdown.l2_share(), 1)
            << " (paper: 'the bulk of VNS overall cost lies in the dedicated L2 links')\n\n";

  // ---- economies of scale + cold vs hot potato ---------------------------------
  util::TextTable scale{{"serviced Mbps", "USD/Mbps (cold potato)", "USD/Mbps (hot potato)",
                         "long-haul utilization"}};
  for (double mbps : {250.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0, 16000.0}) {
    core::TrafficProfile cold;
    cold.serviced_mbps = mbps;
    core::TrafficProfile hot = cold;
    hot.cold_potato = false;
    scale.add_row({util::format_double(mbps, 0),
                   util::format_double(model.monthly_cost(cold).usd_per_mbps(), 2),
                   util::format_double(model.monthly_cost(hot).usd_per_mbps(), 2),
                   util::format_percent(model.long_haul_utilization(cold), 1)});
  }
  std::cout << "economies of scale:\n";
  scale.print(std::cout);
  std::cout << "paper: economies of scale via rising L2 utilization; cold potato keeps\n"
               "traffic on the committed circuits instead of buying premium transit\n";
  bench::metric("total_usd_monthly_at_2000mbps", breakdown.total_usd_monthly);
  bench::metric("l2_share", breakdown.l2_share());
  bench::finish_run(args, 0.0);
  return 0;
}
