// Ablation — the management interface (§3.2 "Overriding Geo-routing").
//
// Geo-routing mis-handles two classes of prefix: blocks whose GeoIP record
// points at the wrong continent (stale M&A records), and blocks whose hosts
// are spread across regions.  The deployed system fixes them with forced
// exits, exemptions, and statically-advertised more-specifics.  This
// ablation measures the displacement tail before and after applying the
// overrides the operators would configure.
#include <iostream>

#include "bench/bench_common.hpp"
#include "util/stats.hpp"

using namespace vns;

namespace {

/// Displacement (egress-PoP RTT minus best-PoP RTT) of one prefix.
double displacement(const measure::Workbench& w, std::size_t id, core::PopId viewpoint) {
  const auto& info = w.internet().prefix(id);
  const auto egress = w.vns().egress_pop(viewpoint, info.prefix.first_host());
  if (!egress) return 0.0;
  double best = 1e18, chosen = 0.0;
  for (core::PopId pop = 0; pop < 11; ++pop) {
    const double rtt = w.probe_base_rtt_ms(pop, id);
    if (pop == *egress) chosen = rtt;
    best = std::min(best, rtt);
  }
  return chosen - best;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  auto world = bench::build_world(args, "bench_ablation_overrides",
                                  "ablation: management-interface overrides (S3.2)");
  auto& w = *world;
  w.vns().set_geo_routing(true);
  const auto viewpoint = *w.vns().find_pop("AMS");

  // The problem population: stale-record and geo-spread prefixes.
  std::vector<std::size_t> problem_ids;
  for (std::size_t id = 0; id < w.internet().prefixes().size(); ++id) {
    const auto& info = w.internet().prefix(id);
    if (info.stale_geoip || info.geo_spread) problem_ids.push_back(id);
  }

  std::vector<double> before;
  for (const auto id : problem_ids) before.push_back(displacement(w, id, viewpoint));

  // Operators identify these prefixes "using continuous, low-overhead
  // active measurements or manually based on customer feedback" (§3.2) and
  // pin each to the PoP closest to where the traffic actually lands.
  for (const auto id : problem_ids) {
    const auto& info = w.internet().prefix(id);
    w.vns().force_exit(info.prefix, w.vns().geo_closest_pop(info.location),
                       /*refresh_now=*/false);
  }
  w.vns().apply_policy_changes();

  std::vector<double> after;
  for (const auto id : problem_ids) after.push_back(displacement(w, id, viewpoint));

  util::Percentiles p_before{std::move(before)};
  util::Percentiles p_after{std::move(after)};
  util::TextTable table{{"state", "prefixes", "within 10ms", "median (ms)", "p95 (ms)"}};
  table.add_row({"geo-routing only", std::to_string(problem_ids.size()),
                 util::format_percent(p_before.fraction_at_most(10.0), 1),
                 util::format_double(p_before.median(), 1),
                 util::format_double(p_before.quantile(0.95), 1)});
  table.add_row({"with overrides", std::to_string(problem_ids.size()),
                 util::format_percent(p_after.fraction_at_most(10.0), 1),
                 util::format_double(p_after.median(), 1),
                 util::format_double(p_after.quantile(0.95), 1)});
  std::cout << "displacement of stale-record + geo-spread prefixes (viewpoint AMS):\n";
  table.print(std::cout);
  std::cout << "takeaway: a handful of operator overrides removes the Fig. 3 outlier\n"
               "clusters entirely (the paper's India-in-Canada and spread blocks)\n";
  w.vns().clear_overrides();
  w.vns().set_geo_routing(false);
  bench::metric("problem_prefixes", problem_ids.size());
  bench::metric("within_10ms_before", p_before.fraction_at_most(10.0));
  bench::metric("within_10ms_after", p_after.fraction_at_most(10.0));
  bench::finish_run(args, 0.0);
  return 0;
}
