// Figure 5 — impact of geo-based routing on neighbor (next-hop AS)
// selection.
//
// Counts, over all destination prefixes, which external neighbor carries
// the chosen route before and after geo-based routing.  The outer plot
// ranks the top-20 neighbors; the inner plot shows the share of prefixes
// reached through upstream transit vs peers.
//
// Paper: transit share stays ~80 % before and after (peers are regional and
// geographically aligned); among upstreams, the one with the strongest
// North-American presence gains after the change.
#include <algorithm>
#include <iostream>
#include <map>

#include "bench/bench_common.hpp"

using namespace vns;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  auto world = bench::build_world(args, "bench_fig5_neighbor_selection",
                                  "Fig. 5 (transit vs peer routes, top-20 neighbors)");
  auto& w = *world;
  const auto viewpoint = *w.vns().find_pop("LON");

  struct NeighborStats {
    bool upstream = false;
    double before = 0.0;
    double after = 0.0;
  };
  std::map<net::Asn, NeighborStats> neighbors;
  double upstream_share[2] = {0.0, 0.0};

  for (int phase = 0; phase < 2; ++phase) {
    w.vns().set_geo_routing(phase == 1);
    std::size_t counted = 0;
    for (const auto& info : w.internet().prefixes()) {
      const auto* route = w.vns().route_at(viewpoint, info.prefix.first_host());
      if (route == nullptr || route->neighbor == bgp::kNoNeighbor) continue;
      const auto& session = w.vns().fabric().neighbor(route->neighbor);
      auto& stats = neighbors[session.asn];
      stats.upstream = session.kind == bgp::NeighborKind::kUpstream;
      (phase == 0 ? stats.before : stats.after) += 1.0;
      upstream_share[phase] += session.kind == bgp::NeighborKind::kUpstream;
      ++counted;
    }
    for (auto& [asn, stats] : neighbors) {
      (phase == 0 ? stats.before : stats.after) *= counted ? 100.0 / counted : 0.0;
    }
    upstream_share[phase] *= counted ? 100.0 / counted : 0.0;
  }
  w.vns().set_geo_routing(false);

  // Rank by before-share, descending (the paper's x-axis ordering).
  std::vector<std::pair<net::Asn, NeighborStats>> ranked(neighbors.begin(), neighbors.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second.before != b.second.before ? a.second.before > b.second.before
                                              : a.first < b.first;
  });

  util::TextTable table{{"rank", "neighbor AS", "kind", "before %", "after %"}};
  for (std::size_t i = 0; i < std::min<std::size_t>(ranked.size(), 20); ++i) {
    const auto& [asn, stats] = ranked[i];
    table.add_row({std::to_string(i + 1), std::to_string(asn),
                   stats.upstream ? "upstream" : "peer", util::format_double(stats.before, 1),
                   util::format_double(stats.after, 1)});
  }
  std::cout << "Fig 5 (outer) - % of routes through the top-20 neighbors:\n";
  table.print(std::cout);

  std::cout << "\nFig 5 (inner) - % of prefixes reached through upstream transit:\n"
            << "  before: " << util::format_double(upstream_share[0], 1)
            << "%   after: " << util::format_double(upstream_share[1], 1) << "%\n"
            << "paper: ~80% through upstreams, stable across the change\n";

  // The upstream that gains the most after geo-routing should be the
  // US-centred one (strong NA presence).
  const auto us_asn = w.internet().as_at(w.vns().us_centred_upstream()).asn;
  double best_gain = -1e9;
  net::Asn best_gainer = 0;
  for (const auto& [asn, stats] : ranked) {
    if (!stats.upstream) continue;
    if (stats.after - stats.before > best_gain) {
      best_gain = stats.after - stats.before;
      best_gainer = asn;
    }
  }
  std::cout << "largest upstream gainer: AS" << best_gainer << " ("
            << util::format_double(best_gain, 1) << " points); US-centred upstream is AS"
            << us_asn << "\n"
            << "paper: upstream 1 (strong NA presence) emerges as more preferred\n";
  bench::metric("upstream_share_before", upstream_share[0]);
  bench::metric("upstream_share_after", upstream_share[1]);
  bench::metric("largest_upstream_gain_points", best_gain);
  bench::finish_run(args, 0.0);
  return 0;
}
