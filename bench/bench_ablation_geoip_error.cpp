// Ablation — sensitivity of geo-routing precision to GeoIP database quality.
//
// §6: "Information from a single commercial GeoIP database has in practice
// proven sufficient."  This ablation sweeps the database error model — the
// fraction of accurately-located prefixes, the country-centroid collapse,
// and the stale-record class — and measures the Fig. 3 headline (fraction
// of prefixes whose geo-chosen PoP is within 10/20 ms of the best PoP).
#include <iostream>

#include "bench/bench_common.hpp"
#include "util/stats.hpp"

using namespace vns;

namespace {

struct Precision {
  double within_10ms = 0.0;
  double within_20ms = 0.0;
};

Precision measure_precision(const measure::Workbench& w, const geo::GeoIpDatabase& db) {
  std::vector<double> displacement;
  for (std::size_t id = 0; id < w.internet().prefixes().size(); ++id) {
    const auto& info = w.internet().prefix(id);
    const auto reported = db.lookup(info.prefix);
    if (!reported) continue;
    const auto geo_pop = w.vns().geo_closest_pop(*reported);
    double best = 1e18, geo_rtt = 0.0;
    for (core::PopId pop = 0; pop < 11; ++pop) {
      const double rtt = w.probe_base_rtt_ms(pop, id);
      if (pop == geo_pop) geo_rtt = rtt;
      best = std::min(best, rtt);
    }
    displacement.push_back(geo_rtt - best);
  }
  util::Percentiles p{std::move(displacement)};
  return {p.fraction_at_most(10.0), p.fraction_at_most(20.0)};
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  auto world = bench::build_world(args, "bench_ablation_geoip_error",
                                  "ablation: Fig. 3 precision vs GeoIP database quality");
  auto& w = *world;

  util::TextTable table{{"database quality", "within 10ms", "within 20ms"}};
  auto sweep = [&](const char* label, double accurate_fraction, bool centroid) {
    geo::GeoIpErrorModel model;
    model.accurate_fraction = accurate_fraction;
    if (!centroid) model.centroid_probability = 0.0;
    const auto db = w.internet().build_geoip(model, args.seed ^ 0x9e0);
    const auto precision = measure_precision(w, db);
    bench::metric(std::string{label} + " within_20ms", precision.within_20ms);
    table.add_row({label, util::format_percent(precision.within_10ms, 1),
                   util::format_percent(precision.within_20ms, 1)});
  };

  sweep("perfect database", 1.0, /*centroid=*/false);
  sweep("accurate 80%, no centroid collapse", 0.8, false);
  sweep("MaxMind-like (accurate 60%, RU centroid)", 0.6, true);
  sweep("accurate 40%", 0.4, true);
  sweep("accurate 20%", 0.2, true);
  table.print(std::cout);
  std::cout << "paper context: ~90% within 20 ms with a commercial database; the\n"
               "plateau shows why one database was 'in practice sufficient' (S6) -\n"
               "PoPs are continent-scale apart, so only continent-scale errors hurt\n";
  bench::finish_run(args, 0.0);
  return 0;
}
