// Figure 11 — geography and loss in the last mile.
//
// Methodology (§5.2): 600 end hosts (50 per AS type per region, NA/EU/AP),
// probed with 100 back-to-back packets every 10 minutes from 10 PoPs
// (ATL/ASH/SJS, AMS/FRA/LON/OSL, HKG/SIN/SYD) for three weeks.  Plots the
// average loss rate per (vantage PoP, destination region).
//
// Paper highlights:
//   - distance raises loss: EU PoPs to AP see 1.6-3.3x the loss AP PoPs see;
//     AP PoPs to EU see 2.1-14.2x the loss EU PoPs see (excluding London);
//   - London to EU destinations loses >2x other EU PoPs — its US-centred
//     upstream hauls some intra-European traffic across the Atlantic;
//   - SJS to AP matches AP-local loss (AP operators peer on the US west
//     coast).
#include <iostream>
#include <map>

#include "bench/bench_common.hpp"
#include "measure/prober.hpp"
#include "sim/path_model.hpp"
#include "sim/time.hpp"
#include "util/stats.hpp"

using namespace vns;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  auto world = bench::build_world(args, "bench_fig11_lastmile_geography",
                                  "Fig. 11 (average last-mile loss by PoP and region)");
  auto& w = *world;
  const double days = args.days > 0 ? args.days : (args.small ? 1.0 : 4.0);
  const double horizon = days * sim::kSecondsPerDay;
  const int per_cell = args.small ? 12 : 50;
  util::Rng rng{args.seed ^ 0xf16'11ULL};
  measure::Prober prober{rng.fork("trains")};

  const auto hosts = w.select_last_mile_hosts(per_cell, args.seed ^ 0x605);
  const char* vantages[] = {"ATL", "ASH", "SJS", "AMS", "FRA", "LON", "OSL",
                            "HKG", "SIN", "SYD"};
  const geo::WorldRegion regions[] = {geo::WorldRegion::kAsiaPacific,
                                      geo::WorldRegion::kEurope,
                                      geo::WorldRegion::kNorthCentralAmerica};

  // avg loss%[vantage][dest region]
  std::map<std::string, std::map<geo::WorldRegion, util::Summary>> results;
  for (const char* name : vantages) {
    const auto pop = *w.vns().find_pop(name);
    for (const auto& host : hosts) {
      const sim::PathModel path{w.probe_segments(pop, host.prefix_id, true), horizon,
                                util::Rng{args.seed ^ (host.prefix_id * 13 + pop)}};
      // One 100-packet train every 10 minutes.
      for (double t = 0.0; t < horizon; t += 600.0) {
        const auto train = prober.train(path, t, 100);
        results[name][host.region].add(train.loss_fraction() * 100.0);
      }
    }
  }

  util::TextTable table{{"PoP", "to AP %", "to EU %", "to NA %"}};
  for (const char* name : vantages) {
    std::vector<std::string> row{name};
    for (const auto region : regions) {
      row.push_back(util::format_double(results[name][region].mean(), 3));
    }
    table.add_row(row);
  }
  std::cout << "Fig 11 - average loss (" << hosts.size() << " hosts, " << days
            << " days, 100-packet trains / 10 min):\n";
  table.print(std::cout);

  // ---- the paper's ratio checks ------------------------------------------------
  auto avg_of = [&](std::initializer_list<const char*> pops, geo::WorldRegion region) {
    util::Summary s;
    for (const char* p : pops) s.add(results[p][region].mean());
    return s.mean();
  };
  const double eu_to_ap = avg_of({"AMS", "FRA", "LON", "OSL"}, geo::WorldRegion::kAsiaPacific);
  const double ap_to_ap = avg_of({"HKG", "SIN"}, geo::WorldRegion::kAsiaPacific);
  const double ap_to_eu = avg_of({"HKG", "SIN", "SYD"}, geo::WorldRegion::kEurope);
  const double eu_to_eu_sans_london = avg_of({"AMS", "FRA", "OSL"}, geo::WorldRegion::kEurope);
  const double london_to_eu = results["LON"][geo::WorldRegion::kEurope].mean();
  const double sjs_to_ap = results["SJS"][geo::WorldRegion::kAsiaPacific].mean();

  util::TextTable ratios{{"relationship", "measured", "paper"}};
  ratios.add_row({"EU PoPs->AP vs AP PoPs->AP",
                  util::format_double(eu_to_ap / ap_to_ap, 2) + "x", "1.6-3.3x"});
  ratios.add_row({"AP PoPs->EU vs EU PoPs->EU (excl LON)",
                  util::format_double(ap_to_eu / eu_to_eu_sans_london, 2) + "x", "2.1-14.2x"});
  ratios.add_row({"London->EU vs other EU PoPs->EU",
                  util::format_double(london_to_eu / eu_to_eu_sans_london, 2) + "x", ">2x"});
  ratios.add_row({"SJS->AP vs AP PoPs->AP",
                  util::format_double(sjs_to_ap / ap_to_ap, 2) + "x", "~1x"});
  std::cout << "\ndistance/anomaly checks:\n";
  ratios.print(std::cout);
  bench::metric("hosts", hosts.size());
  bench::metric("eu_to_ap_vs_ap_to_ap", ap_to_ap > 0 ? eu_to_ap / ap_to_ap : 0.0);
  bench::metric("london_vs_other_eu",
                eu_to_eu_sans_london > 0 ? london_to_eu / eu_to_eu_sans_london : 0.0);
  bench::finish_run(args, 0.0);
  return 0;
}
