// Figure 9 + §5.1.1 — HD video loss through VNS vs through Internet transit.
//
// Methodology (§5.1): clients at the Amsterdam, San Jose and Sydney PoPs
// stream two-minute HD sessions to echo servers inside VNS in EU (AMS, FRA),
// AP (HKG, SIN) and NA (ASH, NYC), twice per hour, simultaneously through
// VNS's dedicated links ("I-") and through upstream transit ("T-").
//
// Paper highlights:
//   - videos through VNS consistently lose less, often nothing at all;
//   - streams >0.15 % loss to AP through transit: Amsterdam ~10 %,
//     San Jose ~5 %, Sydney ~43 %; through VNS: 0.7 %, 0.8 %, 0 %;
//   - jitter sub-10 ms for 99 % of 1080p (97 % of 720p) streams both ways;
//   - no qualitative 720p/1080p loss difference.
#include <iostream>
#include <map>

#include "bench/bench_common.hpp"
#include "media/session.hpp"
#include "sim/path_model.hpp"
#include "sim/time.hpp"
#include "util/stats.hpp"

using namespace vns;

namespace {

struct SeriesKey {
  std::string client;
  geo::PopRegion server_region;
  bool via_vns;

  [[nodiscard]] std::string label() const {
    return (via_vns ? "I-" : "T-") + std::string{to_string(server_region)} + " (" + client + ")";
  }
  friend bool operator<(const SeriesKey& a, const SeriesKey& b) {
    return std::tie(a.client, a.server_region, a.via_vns) <
           std::tie(b.client, b.server_region, b.via_vns);
  }
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  auto world = bench::build_world(args, "bench_fig9_video_loss",
                                  "Fig. 9 (video loss CCDF) + §5.1.1 jitter");
  auto& w = *world;
  const double days = args.days > 0 ? args.days : (args.small ? 2.0 : 7.0);
  const double horizon = days * sim::kSecondsPerDay;
  const util::Rng rng{args.seed ^ 0xf16'9ULL};

  const char* clients[] = {"AMS", "SJS", "SYD"};
  const std::pair<const char*, geo::PopRegion> servers[] = {
      {"AMS", geo::PopRegion::kEU}, {"FRA", geo::PopRegion::kEU},
      {"HKG", geo::PopRegion::kAP}, {"SIN", geo::PopRegion::kAP},
      {"ASH", geo::PopRegion::kUS}, {"NYC", geo::PopRegion::kUS},
  };

  std::map<SeriesKey, std::vector<double>> loss_series;   // loss %
  std::vector<double> jitter_1080, jitter_720;
  std::map<bool, util::Summary> loss_by_profile;  // 720p vs 1080p mean loss

  const auto profile_1080 = media::VideoProfile::hd1080();
  const auto profile_720 = media::VideoProfile::hd720();
  media::SessionConfig session_config;

  // One streaming shard per (client, server, route, definition); the paper
  // streams both definitions on both routes simultaneously.
  struct TaskKey {
    const char* client;
    std::size_t server;
    bool via_vns;
    bool hd720;
  };
  std::vector<TaskKey> keys;
  std::vector<measure::StreamTask> tasks;
  for (const char* client_name : clients) {
    const auto client = *w.vns().find_pop(client_name);
    for (std::size_t s = 0; s < std::size(servers); ++s) {
      const auto server = *w.vns().find_pop(servers[s].first);
      if (server == client) continue;  // the co-located echo is not a path

      // The two simultaneous paths of §5.1: VNS's dedicated links, and a
      // ride on the client PoP's primary upstream between the two cities.
      const auto vns_segments = w.vns().internal_segments(client, server, w.catalog());
      std::vector<topo::AsIndex> transit_as_path;
      for (const auto& attachment : w.vns().attachments()) {
        if (attachment.pop == client && attachment.upstream) {
          transit_as_path.push_back(attachment.as);
          break;
        }
      }
      const auto transit_segments = topo::transit_path_segments(
          w.internet(), w.vns().pop(client).city.location, w.vns().pop(client).city.region,
          transit_as_path, w.vns().pop(server).city.location, topo::AsType::kLTP,
          w.vns().pop(server).city.region, w.catalog(), w.delay(),
          /*include_last_mile=*/false);

      for (const bool via_vns : {true, false}) {
        for (const bool hd720 : {false, true}) {
          measure::StreamTask task;
          task.segments = via_vns ? vns_segments : transit_segments;
          task.horizon_s = horizon;
          // Two sessions per hour for `days`, staggered per server.
          task.start_s = s * 150.0;
          task.end_s = horizon - 150.0;
          task.interval_s = 1800.0;
          task.profile = hd720 ? profile_720 : profile_1080;
          task.session = session_config;
          keys.push_back({client_name, s, via_vns, hd720});
          tasks.push_back(std::move(task));
        }
      }
    }
  }

  const auto campaign_t0 = std::chrono::steady_clock::now();
  const auto results = measure::run_stream_campaign(tasks, rng, args.threads);
  const double campaign_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - campaign_t0).count();
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto& key = keys[i];
    for (const auto& stats : results[i].sessions) {
      if (key.hd720) {
        jitter_720.push_back(stats.jitter_ms);
        loss_by_profile[true].add(stats.loss_fraction());
      } else {
        loss_series[{key.client, servers[key.server].second, key.via_vns}].push_back(
            stats.loss_percent());
        jitter_1080.push_back(stats.jitter_ms);
        loss_by_profile[false].add(stats.loss_fraction());
      }
    }
  }

  util::TextTable table{{"series", "streams", "no loss", ">0.01%", ">0.15%", ">1%", "mean %"}};
  for (const auto& [key, losses] : loss_series) {
    util::Percentiles p{std::vector<double>(losses)};
    util::Summary mean;
    for (const double loss : losses) mean.add(loss);
    table.add_row({key.label(), std::to_string(losses.size()),
                   util::format_percent(p.fraction_at_most(0.0), 1),
                   util::format_percent(p.fraction_above(0.01), 1),
                   util::format_percent(p.fraction_above(0.15), 2),
                   util::format_percent(p.fraction_above(1.0), 2),
                   util::format_double(mean.mean(), 4)});
  }
  std::cout << "Fig 9 - 1080p stream loss, I- = through VNS, T- = through transit:\n";
  table.print(std::cout);
  std::cout << "paper: >0.15% to AP through transit: AMS 10% / SJS 5% / SYD 43%;\n"
               "       through VNS: AMS 0.7% / SJS 0.8% / SYD 0%; T-EU/T-NA small but nonzero\n\n";

  // ---- §5.1.1 jitter ---------------------------------------------------------
  util::Percentiles j1080{std::move(jitter_1080)};
  util::Percentiles j720{std::move(jitter_720)};
  util::TextTable jitter{{"definition", "streams", "jitter<10ms", "jitter<20ms", "p99 (ms)"}};
  jitter.add_row({"1080p", std::to_string(j1080.count()),
                  util::format_percent(j1080.fraction_at_most(10.0), 1),
                  util::format_percent(j1080.fraction_at_most(20.0), 1),
                  util::format_double(j1080.quantile(0.99), 2)});
  jitter.add_row({"720p", std::to_string(j720.count()),
                  util::format_percent(j720.fraction_at_most(10.0), 1),
                  util::format_percent(j720.fraction_at_most(20.0), 1),
                  util::format_double(j720.quantile(0.99), 2)});
  std::cout << "S5.1.1 - interarrival jitter:\n";
  jitter.print(std::cout);
  std::cout << "paper: sub-10 ms for 99% (1080p) / 97% (720p); below the 20 ms guideline\n\n";

  std::cout << "720p vs 1080p mean loss: " << util::format_percent(loss_by_profile[true].mean(), 4)
            << " vs " << util::format_percent(loss_by_profile[false].mean(), 4)
            << " (paper: no qualitative difference)\n";
  bench::metric("streams_1080p", j1080.count());
  bench::metric("streams_720p", j720.count());
  bench::metric("jitter_1080p_sub10ms", j1080.fraction_at_most(10.0));
  bench::metric("jitter_720p_sub10ms", j720.fraction_at_most(10.0));
  bench::metric("mean_loss_720p", loss_by_profile[true].mean());
  bench::metric("mean_loss_1080p", loss_by_profile[false].mean());
  bench::finish_run(args, campaign_s);
  return 0;
}
