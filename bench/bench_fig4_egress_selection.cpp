// Figure 4 — impact of geo-based routing on egress PoP selection.
//
// From the perspective of PoP 10 (London), counts the percentage of routes
// that exit at each PoP before geo-based routing (normal relationship +
// hot-potato policies) and after (the geo route reflector enabled).
//
// Paper: before, London exits ~70 % of routes locally; after, the
// distribution spreads across PoPs 3/5 (US east coast), 7 (AP), 9 (EU), etc.
#include <chrono>
#include <iostream>

#include "bench/bench_common.hpp"

using namespace vns;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  auto world = bench::build_world(args, "bench_fig4_egress_selection",
                                  "Fig. 4 (egress PoP selection before/after geo-routing)");
  auto& w = *world;
  const auto london = *w.vns().find_pop("LON");

  // Egress distribution as seen from London's primary router.
  auto egress_shares = [&] {
    std::vector<double> shares(w.vns().pops().size(), 0.0);
    std::size_t counted = 0;
    for (const auto& info : w.internet().prefixes()) {
      const auto egress = w.vns().egress_pop(london, info.prefix.first_host());
      if (!egress) continue;
      shares[*egress] += 1.0;
      ++counted;
    }
    for (auto& share : shares) share = counted ? share * 100.0 / counted : 0.0;
    return shares;
  };

  // The two full-table sweeps are this bench's campaign: every prefix
  // resolved through the data plane twice (hot-potato, then geo-routed).
  const auto t0 = std::chrono::steady_clock::now();
  w.vns().set_geo_routing(false);
  const auto before = egress_shares();
  w.vns().set_geo_routing(true);
  const auto after = egress_shares();
  const double campaign_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  util::TextTable table{{"PoP", "name", "region", "before %", "after %"}};
  for (core::PopId pop = 0; pop < w.vns().pops().size(); ++pop) {
    const auto& site = w.vns().pop(pop);
    table.add_row({std::to_string(pop + 1), site.name, std::string{to_string(site.region)},
                   util::format_double(before[pop], 1), util::format_double(after[pop], 1)});
  }
  std::cout << "Fig 4 - % of routes exiting at each PoP, viewpoint PoP 10 (London):\n";
  table.print(std::cout);

  std::cout << "\nlocal (London) exit share: before "
            << util::format_double(before[london], 1) << "% -> after "
            << util::format_double(after[london], 1) << "%\n";
  double spread_before = 0, spread_after = 0;
  for (core::PopId pop = 0; pop < w.vns().pops().size(); ++pop) {
    spread_before = std::max(spread_before, before[pop]);
    spread_after = std::max(spread_after, after[pop]);
  }
  std::cout << "max single-PoP share: before " << util::format_double(spread_before, 1)
            << "% -> after " << util::format_double(spread_after, 1) << "%\n";
  std::cout << "paper: before ~70% local hot-potato exit; after, routes spread far more "
               "evenly across egresses\n";
  bench::metric("local_exit_share_before", before[london]);
  bench::metric("local_exit_share_after", after[london]);
  bench::metric("max_pop_share_before", spread_before);
  bench::metric("max_pop_share_after", spread_after);
  bench::finish_run(args, campaign_seconds);
  return 0;
}
