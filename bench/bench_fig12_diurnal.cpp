// Figure 12 — diurnal patterns in last-mile loss, from the San Jose PoP.
//
// Methodology (§5.2.3): for each hour of the day (CET), count measurement
// rounds that experienced loss, per destination AS type and region.
//
// Paper highlights:
//   - clear diurnal patterns everywhere;
//   - loss toward EU/NA destinations peaks with the *destination's* peak
//     hours; toward AP it is dominated by AP's own local day (AP congestion
//     masks remote peaks);
//   - CAHPs in AP show ~8x more loss occurrences during local busy hours;
//   - LTP loss in AP peaks in local evening (home-user traffic).
#include <iostream>
#include <map>

#include "bench/bench_common.hpp"
#include "measure/prober.hpp"
#include "sim/path_model.hpp"
#include "sim/time.hpp"
#include "util/stats.hpp"

using namespace vns;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  auto world = bench::build_world(args, "bench_fig12_diurnal",
                                  "Fig. 12 (hourly loss frequency from SJS by type x region)");
  auto& w = *world;
  const double days = args.days > 0 ? args.days : (args.small ? 2.0 : 6.0);
  const double horizon = days * sim::kSecondsPerDay;
  const int per_cell = args.small ? 12 : 50;
  const util::Rng rng{args.seed ^ 0xf16'12ULL};

  const auto hosts = w.select_last_mile_hosts(per_cell, args.seed ^ 0x605);
  const auto sjs = *w.vns().find_pop("SJS");

  // counters[type][region] over hour-of-day in CET.
  std::map<topo::AsType, std::map<geo::WorldRegion, measure::HourlyLossCounter>> counters;
  for (const auto& host : hosts) {
    counters[host.type].try_emplace(host.region, sim::kTzCet);
  }
  // One probing shard per host, each drawing from its own RNG substream;
  // per-round outcomes come back in host order and are binned serially.
  std::vector<measure::TrainTask> tasks;
  tasks.reserve(hosts.size());
  for (const auto& host : hosts) {
    measure::TrainTask task;
    task.segments = w.probe_segments(sjs, host.prefix_id, true);
    task.horizon_s = horizon;
    task.interval_s = 600.0;
    task.packets = 100;
    tasks.push_back(std::move(task));
  }
  const auto campaign_t0 = std::chrono::steady_clock::now();
  const auto results = measure::run_train_campaign(tasks, rng, args.threads);
  const double campaign_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - campaign_t0).count();
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    auto& counter = counters[hosts[i].type].at(hosts[i].region);
    for (const auto& round : results[i].rounds) counter.record(round.t, round.lost > 0);
  }

  const std::pair<const char*, geo::WorldRegion> regions[] = {
      {"AP", geo::WorldRegion::kAsiaPacific},
      {"EU", geo::WorldRegion::kEurope},
      {"NA", geo::WorldRegion::kNorthCentralAmerica}};
  const char* type_names[] = {"LTP", "STP", "CAHP", "EC"};

  for (int t = 0; t < topo::kAsTypeCount; ++t) {
    const auto type = static_cast<topo::AsType>(t);
    util::TextTable table{{"hour (CET)", "AP", "EU", "NA"}};
    for (int hour = 0; hour < 24; ++hour) {
      std::vector<std::string> row{std::to_string(hour)};
      for (const auto& [name, region] : regions) {
        (void)name;
        row.push_back(std::to_string(counters[type].at(region).lossy_rounds(hour)));
      }
      table.add_row(row);
    }
    std::cout << "Fig 12 (" << type_names[t] << ") - lossy rounds per CET hour, SJS vantage:\n";
    table.print(std::cout);
    std::cout << '\n';
  }

  // ---- pattern checks -----------------------------------------------------------
  // Peak CET hour per (type, region) and busy/quiet contrast.
  util::TextTable peaks{{"type", "region", "peak hour CET", "peak/trough", "paper expectation"}};
  for (int t = 0; t < topo::kAsTypeCount; ++t) {
    const auto type = static_cast<topo::AsType>(t);
    for (const auto& [name, region] : regions) {
      const auto& counter = counters[type].at(region);
      int peak_hour = 0;
      std::uint32_t peak = 0, trough = ~0u;
      for (int hour = 0; hour < 24; ++hour) {
        if (counter.lossy_rounds(hour) > peak) {
          peak = counter.lossy_rounds(hour);
          peak_hour = hour;
        }
        trough = std::min(trough, counter.lossy_rounds(hour));
      }
      // Expected peak window in CET, from the type's dominant load (business
      // ~13:00 local, residential evening ~20:30 local) shifted by the
      // destination region's timezone (AP ~ UTC+8, EU ~ UTC+1, NA ~ UTC-6).
      std::string expectation;
      const bool evening_driven =
          type == topo::AsType::kCAHP ||
          (type == topo::AsType::kLTP && region != geo::WorldRegion::kEurope);
      if (region == geo::WorldRegion::kAsiaPacific) {
        expectation = evening_driven ? "AP evening (10-16 CET)" : "AP day (3-11 CET)";
      } else if (region == geo::WorldRegion::kEurope) {
        expectation = evening_driven ? "EU evening (18-22 CET)" : "EU day (10-17 CET)";
      } else {
        expectation = evening_driven ? "NA evening (1-6 CET)" : "NA day (16-23 CET)";
      }
      peaks.add_row({type_names[t], name, std::to_string(peak_hour),
                     util::format_double(trough ? double(peak) / trough : double(peak), 1) + "x",
                     expectation});
    }
  }
  std::cout << "diurnal peak summary:\n";
  peaks.print(std::cout);

  // Busiest vs quietest 3-hour window for AP CAHPs (the paper's "8 times
  // more loss occurrences during working hours").
  const auto& ap_cahp = counters[topo::AsType::kCAHP].at(geo::WorldRegion::kAsiaPacific);
  double busiest = 0.0, quietest = 1e18;
  for (int start = 0; start < 24; ++start) {
    double window = 0.0;
    for (int k = 0; k < 3; ++k) window += ap_cahp.lossy_rounds((start + k) % 24);
    busiest = std::max(busiest, window);
    quietest = std::min(quietest, window);
  }
  std::cout << "\nAP CAHP busiest vs quietest 3h window: "
            << util::format_double(quietest > 0 ? busiest / quietest : busiest, 1)
            << "x (paper: ~8x more during busy hours)\n";
  bench::metric("ap_cahp_busy_vs_quiet_3h",
                quietest > 0 ? busiest / quietest : busiest);
  bench::finish_run(args, campaign_s);
  return 0;
}
