// Figure 3 + §4.1 text — geo-based routing precision.
//
// Methodology (matching §4.1): probe the first address of every destination
// prefix from all 11 PoPs with 5 ICMP pings, recording the minimum RTT;
// probes are forced out of VNS immediately at each PoP.  Compare the RTT
// from the PoP that geo-based routing selects (closest by GeoIP-reported
// location) against the minimum RTT across all PoPs.
//
// Reproduces:
//   - Fig. 3 (left): CDF of the RTT difference, overall and per region
//     (paper: 90 % / 84 % / 82 % of EU / NA / AP prefixes within 10 ms;
//     90 % within 20 ms overall);
//   - Fig. 3 (right): the scatter's outlier clusters, attributed to GeoIP
//     error classes (mid-Russia centroid, stale India-to-Canada records);
//   - §4.1 text: per-AS congruence of the delay-closest PoP.
#include <algorithm>
#include <iostream>
#include <map>

#include "bench/bench_common.hpp"
#include "measure/prober.hpp"
#include "sim/path_model.hpp"
#include "util/stats.hpp"

using namespace vns;

namespace {

struct ProbeOutcome {
  std::size_t prefix_id = 0;
  core::PopId geo_pop = core::kNoPop;
  core::PopId best_pop = core::kNoPop;
  double geo_rtt_ms = 0.0;
  double best_rtt_ms = 0.0;
  geo::PopRegion reported_region = geo::PopRegion::kEU;

  [[nodiscard]] double difference() const noexcept { return geo_rtt_ms - best_rtt_ms; }
};

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  auto world = bench::build_world(args, "bench_fig3_geo_precision",
                                  "Fig. 3 (geo-routing precision) + §4.1 AS congruence");
  auto& w = *world;
  util::Rng rng{args.seed ^ 0xf16'3ULL};
  measure::Prober prober{rng.fork("pings")};

  const auto& prefixes = w.internet().prefixes();
  std::vector<ProbeOutcome> outcomes;
  outcomes.reserve(prefixes.size());
  std::size_t unresolved = 0;

  const auto campaign_t0 = std::chrono::steady_clock::now();
  for (std::size_t id = 0; id < prefixes.size(); ++id) {
    const auto& info = prefixes[id];
    const auto reported = w.geoip().lookup(info.prefix);
    if (!reported) {
      ++unresolved;
      continue;
    }
    ProbeOutcome outcome;
    outcome.prefix_id = id;
    outcome.geo_pop = w.vns().geo_closest_pop(*reported);
    outcome.reported_region = w.vns().pop(outcome.geo_pop).region;

    // 5-ping min-RTT from every PoP, forced out locally.
    for (core::PopId pop = 0; pop < w.vns().pops().size(); ++pop) {
      const sim::PathModel path{w.probe_segments(pop, id, /*include_last_mile=*/true), 0.0,
                                util::Rng{args.seed ^ (id * 11 + pop)}};
      const auto ping = prober.ping(path, 0.0, 5);
      if (!ping.min_rtt_ms) continue;
      const double rtt = *ping.min_rtt_ms;
      if (pop == outcome.geo_pop) outcome.geo_rtt_ms = rtt;
      if (outcome.best_pop == core::kNoPop || rtt < outcome.best_rtt_ms) {
        outcome.best_pop = pop;
        outcome.best_rtt_ms = rtt;
      }
    }
    if (outcome.best_pop == core::kNoPop || outcome.geo_rtt_ms == 0.0) continue;
    outcomes.push_back(outcome);
  }
  const double campaign_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - campaign_t0).count();

  std::cout << "probed " << outcomes.size() << " prefixes ("
            << outcomes.size() * w.vns().pops().size() * 5 << " pings); " << unresolved
            << " without GeoIP records\n\n";

  // ---- Fig. 3 left: CDF of RTT difference, overall and per region ----------
  auto cdf_row = [&](std::string_view label, const std::vector<double>& diffs) {
    util::Percentiles p{std::vector<double>(diffs)};
    return std::vector<std::string>{
        std::string{label},
        std::to_string(diffs.size()),
        util::format_percent(p.fraction_at_most(0.5), 1),
        util::format_percent(p.fraction_at_most(10.0), 1),
        util::format_percent(p.fraction_at_most(20.0), 1),
        util::format_percent(p.fraction_at_most(50.0), 1),
        util::format_double(p.quantile(0.99), 1),
    };
  };

  std::vector<double> all;
  std::map<geo::PopRegion, std::vector<double>> by_region;
  for (const auto& outcome : outcomes) {
    all.push_back(outcome.difference());
    by_region[outcome.reported_region].push_back(outcome.difference());
  }

  util::TextTable cdf{{"series", "prefixes", "<=0.5ms", "<=10ms", "<=20ms", "<=50ms", "p99(ms)"}};
  cdf.add_row(cdf_row("All", all));
  for (const auto& [region, diffs] : by_region) cdf.add_row(cdf_row(to_string(region), diffs));
  std::cout << "Fig 3 (left) - CDF of RTT(geo PoP) - RTT(best PoP):\n";
  cdf.print(std::cout);
  std::cout << "paper: EU 90% / NA 84% / AP 82% within 10 ms; 90% of all within 20 ms\n\n";

  // ---- diagnostic: displacement by GeoIP record class -----------------------
  std::map<geo::GeoIpErrorClass, std::vector<double>> by_class;
  for (const auto& outcome : outcomes) {
    const auto* entry = w.geoip().entry(prefixes[outcome.prefix_id].prefix);
    if (entry) by_class[entry->error_class].push_back(outcome.difference());
  }
  util::TextTable cls{{"GeoIP class", "prefixes", "<=10ms", "<=20ms", "p90(ms)"}};
  for (const auto& [error_class, diffs] : by_class) {
    util::Percentiles p{std::vector<double>(diffs)};
    cls.add_row({std::string{to_string(error_class)}, std::to_string(diffs.size()),
                 util::format_percent(p.fraction_at_most(10.0), 1),
                 util::format_percent(p.fraction_at_most(20.0), 1),
                 util::format_double(p.quantile(0.9), 1)});
  }
  std::cout << "displacement by GeoIP record class (diagnostic):\n";
  cls.print(std::cout);
  std::cout << '\n';

  // ---- Fig. 3 right: outlier clusters --------------------------------------
  int outliers = 0, centroid_cluster = 0, stale_cluster = 0, other = 0;
  for (const auto& outcome : outcomes) {
    if (outcome.difference() < 100.0) continue;
    ++outliers;
    const auto* entry = w.geoip().entry(prefixes[outcome.prefix_id].prefix);
    if (entry == nullptr) continue;
    if (entry->error_class == geo::GeoIpErrorClass::kCountryCentroid) {
      ++centroid_cluster;
    } else if (entry->error_class == geo::GeoIpErrorClass::kStaleRecord) {
      ++stale_cluster;
    } else {
      ++other;
    }
  }
  util::TextTable scatter{{"outlier class (diff >= 100ms)", "count"}};
  scatter.add_row({"country-centroid (mid-Russia cluster)", std::to_string(centroid_cluster)});
  scatter.add_row({"stale-record (India->Canada cluster)", std::to_string(stale_cluster)});
  scatter.add_row({"other (jitter / geo-spread)", std::to_string(other)});
  scatter.add_row({"total", std::to_string(outliers)});
  std::cout << "Fig 3 (right) - scatter outliers and their GeoIP error classes:\n";
  scatter.print(std::cout);
  std::cout << "paper: two distinct clusters, (100,400) Russian centroid and (250,500) "
               "Indian prefixes registered in Canada\n\n";

  // ---- §4.1 text: per-AS congruence of the delay-closest PoP ----------------
  std::map<topo::AsIndex, std::map<core::PopId, int>> per_as;
  for (const auto& outcome : outcomes) {
    per_as[prefixes[outcome.prefix_id].origin][outcome.best_pop]++;
  }
  int ases_measured = 0, ases_25 = 0, ases_90 = 0;
  for (const auto& [as, pops] : per_as) {
    int total = 0, dominant = 0;
    for (const auto& [pop, count] : pops) {
      total += count;
      dominant = std::max(dominant, count);
    }
    if (total < 2) continue;  // congruence needs at least two prefixes
    ++ases_measured;
    const double share = static_cast<double>(dominant) / total;
    ases_25 += share >= 0.25;
    ases_90 += share >= 0.90;
  }
  util::TextTable congruence{{"metric", "value", "paper"}};
  congruence.add_row({"multi-prefix ASes measured", std::to_string(ases_measured), "~14k"});
  congruence.add_row({">=25% of prefixes delay-closest to same PoP",
                      util::format_percent(ases_measured ? double(ases_25) / ases_measured : 0, 1),
                      "99%"});
  congruence.add_row({">=90% of prefixes delay-closest to same PoP",
                      util::format_percent(ases_measured ? double(ases_90) / ases_measured : 0, 1),
                      "60%"});
  std::cout << "S4.1 - AS congruence of the delay-closest PoP:\n";
  congruence.print(std::cout);

  util::Percentiles overall{std::move(all)};
  bench::metric("prefixes_probed", outcomes.size());
  bench::metric("within_10ms", overall.fraction_at_most(10.0));
  bench::metric("within_20ms", overall.fraction_at_most(20.0));
  bench::metric("outliers_over_100ms", std::uint64_t(outliers));
  bench::finish_run(args, campaign_s);
  return 0;
}
