// Ablation — egress-selection policy: hot potato vs geo cold-potato vs a
// min-RTT oracle.
//
// §3.2 discusses the alternative to GeoIP-based selection: active
// measurements from each PoP (a delay oracle) at the cost of control-plane
// overhead.  This ablation quantifies the whole spectrum on one axis —
// the RTT displacement (chosen-PoP RTT minus best-PoP RTT) per prefix:
//   - hot potato: exit where the viewpoint PoP's BGP would exit;
//   - geo: exit at the GeoIP-closest PoP (the paper's system);
//   - oracle: exit at the true min-RTT PoP (displacement 0 by definition,
//     shown as the bound active probing would buy).
#include <iostream>

#include "bench/bench_common.hpp"
#include "util/stats.hpp"

using namespace vns;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  auto world = bench::build_world(args, "bench_ablation_routing_policies",
                                  "ablation: hot-potato vs geo vs min-RTT oracle");
  auto& w = *world;
  const auto viewpoint = *w.vns().find_pop("LON");
  w.vns().set_geo_routing(false);

  std::vector<double> hot_disp, geo_disp;
  double hot_rtt_sum = 0, geo_rtt_sum = 0, oracle_rtt_sum = 0;
  std::size_t counted = 0;

  for (std::size_t id = 0; id < w.internet().prefixes().size(); ++id) {
    const auto& info = w.internet().prefix(id);
    // Base RTT from every PoP (no ping noise: this isolates the policy).
    double rtts[11];
    double best = 1e18;
    for (core::PopId pop = 0; pop < 11; ++pop) {
      rtts[pop] = w.probe_base_rtt_ms(pop, id);
      best = std::min(best, rtts[pop]);
    }
    const auto hot = w.vns().egress_pop(viewpoint, info.prefix.first_host());
    const auto reported = w.geoip().lookup(info.prefix);
    if (!hot || !reported) continue;
    const auto geo_pop = w.vns().geo_closest_pop(*reported);
    ++counted;
    hot_disp.push_back(rtts[*hot] - best);
    geo_disp.push_back(rtts[geo_pop] - best);
    hot_rtt_sum += rtts[*hot];
    geo_rtt_sum += rtts[geo_pop];
    oracle_rtt_sum += best;
  }

  util::TextTable table{{"policy", "mean RTT (ms)", "displaced<=10ms", "displaced<=50ms",
                         "p95 displacement"}};
  auto row = [&](const char* name, std::vector<double> disp, double rtt_sum) {
    util::Percentiles p{std::move(disp)};
    table.add_row({name, util::format_double(rtt_sum / counted, 1),
                   util::format_percent(p.fraction_at_most(10.0), 1),
                   util::format_percent(p.fraction_at_most(50.0), 1),
                   util::format_double(p.quantile(0.95), 1)});
  };
  row("hot potato (BGP default)", std::move(hot_disp), hot_rtt_sum);
  row("geo cold-potato (paper)", std::move(geo_disp), geo_rtt_sum);
  table.add_row({"min-RTT oracle (probing)", util::format_double(oracle_rtt_sum / counted, 1),
                 "100.0%", "100.0%", "0.0"});
  std::cout << "egress policy ablation over " << counted << " prefixes (viewpoint London):\n";
  table.print(std::cout);
  std::cout << "takeaway: GeoIP gets most of the oracle's benefit with none of the\n"
               "active-probing control-plane overhead (the design argument of S3.2)\n";
  bench::metric("prefixes", std::uint64_t(counted));
  bench::metric("hot_potato_mean_rtt_ms", counted ? hot_rtt_sum / counted : 0.0);
  bench::metric("geo_mean_rtt_ms", counted ? geo_rtt_sum / counted : 0.0);
  bench::metric("oracle_mean_rtt_ms", counted ? oracle_rtt_sum / counted : 0.0);
  bench::finish_run(args, 0.0);
  return 0;
}
