// Figure 7 — where incoming service traffic enters VNS.
//
// Methodology (§4.4): VNS TURN relays share one anycast address; 60k user
// authentication requests over a day are mapped to the PoP region where
// they entered.  VNS shapes this with geographically-limited transit,
// traffic engineering and BGP communities; the figure shows the world-region
// -> PoP-region flow following geography.
#include <iostream>

#include "bench/bench_common.hpp"

using namespace vns;

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  auto world = bench::build_world(args, "bench_fig7_incoming_traffic",
                                  "Fig. 7 (anycast ingress by origin region)");
  auto& w = *world;
  util::Rng rng{args.seed ^ 0xf16'7ULL};

  // Request population: stub/access networks originate user traffic,
  // weighted towards larger networks.
  std::vector<topo::AsIndex> user_ases;
  std::vector<double> weights;
  for (topo::AsIndex as = 0; as < w.internet().as_count(); ++as) {
    const auto& node = w.internet().as_at(as);
    if (node.type != topo::AsType::kEC && node.type != topo::AsType::kCAHP) continue;
    user_ases.push_back(as);
    weights.push_back(node.type == topo::AsType::kCAHP ? 4.0 : 1.0);
  }

  const int requests = args.small ? 6000 : 60000;
  // counts[world region][pop region]
  std::vector<std::vector<int>> counts(geo::kWorldRegionCount,
                                       std::vector<int>(geo::kPopRegionCount, 0));
  int diagonal = 0;
  for (int i = 0; i < requests; ++i) {
    const auto as = user_ases[rng.weighted_index(weights)];
    const auto& node = w.internet().as_at(as);
    // Users scatter around their network's home.
    const auto user_loc = geo::destination_point(
        node.home.location, rng.uniform(0.0, 360.0), rng.exponential(60.0));
    const auto pop = w.vns().select_ingress(as, user_loc);
    const auto pop_region = w.vns().pop(pop).region;
    counts[static_cast<int>(node.region)][static_cast<int>(pop_region)]++;
    diagonal += pop_region == geo::expected_pop_region(node.region);
  }

  util::TextTable table{{"origin region", "requests", "->EU", "->US", "->AP", "->OC"}};
  for (int region = 0; region < geo::kWorldRegionCount; ++region) {
    int total = 0;
    for (int pr = 0; pr < geo::kPopRegionCount; ++pr) total += counts[region][pr];
    if (total == 0) continue;
    std::vector<std::string> row{
        std::string{to_string(static_cast<geo::WorldRegion>(region))}, std::to_string(total)};
    for (int pr = 0; pr < geo::kPopRegionCount; ++pr) {
      row.push_back(util::format_percent(double(counts[region][pr]) / total, 1));
    }
    table.add_row(row);
  }
  std::cout << "Fig 7 - ingress PoP region by request origin region (" << requests
            << " anycast TURN requests):\n";
  table.print(std::cout);
  std::cout << "\ngeography-following share (origin region -> its expected PoP region): "
            << util::format_percent(double(diagonal) / requests, 1) << '\n'
            << "paper: incoming traffic follows geography to a large extent\n";
  bench::metric("requests", std::uint64_t(requests));
  bench::metric("geography_following_share", double(diagonal) / requests);
  bench::finish_run(args, 0.0);
  return 0;
}
