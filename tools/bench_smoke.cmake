# CTest driver for the bench_smoke target (invoked via `cmake -P`).
#
# Runs every bench listed in BENCHES with `--small --scale small --json
# --trace --seed 7` inside WORK_DIR (the explicit `--scale` keeps the new
# preset-parsing path covered while staying at smoke size), then validates
# the BENCH_*.json it wrote with
# `JSON_CHECK --bench` (well-formed JSON plus the required memory-accounting
# fields) and the TRACE_*.jsonl with `JSON_CHECK --jsonl`.  Any bench
# failure, missing artifact, or malformed artifact fails the test.
#
# Expected -D inputs: BENCH_DIR, JSON_CHECK, BENCHES (;-list), WORK_DIR.

foreach(var BENCH_DIR JSON_CHECK BENCHES WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "bench_smoke.cmake: missing -D${var}")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")

set(failures 0)
foreach(bench IN LISTS BENCHES)
  set(binary "${BENCH_DIR}/${bench}")
  if(NOT EXISTS "${binary}")
    message(SEND_ERROR "bench_smoke: missing binary ${binary}")
    math(EXPR failures "${failures} + 1")
    continue()
  endif()

  # Stale artifacts from a previous run must not mask a bench that stopped
  # writing its outputs.
  string(REGEX REPLACE "^bench_" "" stem "${bench}")
  set(json_artifact "${WORK_DIR}/BENCH_${stem}.json")
  set(trace_artifact "${WORK_DIR}/TRACE_${stem}.jsonl")
  file(REMOVE "${json_artifact}" "${trace_artifact}")

  message(STATUS "bench_smoke: ${bench} --small --scale small --json --trace")
  execute_process(
    COMMAND "${binary}" --small --scale small --json --trace --seed 7
    WORKING_DIRECTORY "${WORK_DIR}"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE run_out
    ERROR_VARIABLE run_out)
  if(NOT rc EQUAL 0)
    message(SEND_ERROR "bench_smoke: ${bench} exited ${rc}\n${run_out}")
    math(EXPR failures "${failures} + 1")
    continue()
  endif()

  # bench_slo_serving's record contract includes the serving-mode "slo"
  # block; enforce it there (and only there — other benches never emit one).
  set(bench_mode "--bench")
  if(bench STREQUAL "bench_slo_serving")
    list(APPEND bench_mode "--require-slo")
  endif()

  foreach(pair "${json_artifact};${bench_mode}" "${trace_artifact};--jsonl")
    list(GET pair 0 artifact)
    set(mode_args "")
    list(LENGTH pair pair_len)
    if(pair_len GREATER 1)
      list(SUBLIST pair 1 -1 mode_args)
    endif()
    if(NOT EXISTS "${artifact}")
      message(SEND_ERROR "bench_smoke: ${bench} did not write ${artifact}")
      math(EXPR failures "${failures} + 1")
      continue()
    endif()
    execute_process(
      COMMAND "${JSON_CHECK}" ${mode_args} "${artifact}"
      RESULT_VARIABLE check_rc
      OUTPUT_VARIABLE check_out
      ERROR_VARIABLE check_out)
    if(NOT check_rc EQUAL 0)
      message(SEND_ERROR "bench_smoke: invalid artifact ${artifact}\n${check_out}")
      math(EXPR failures "${failures} + 1")
    endif()
  endforeach()
endforeach()

if(failures GREATER 0)
  message(FATAL_ERROR "bench_smoke: ${failures} failure(s)")
endif()
message(STATUS "bench_smoke: all benches passed")
