# CTest driver for the gated bench_smoke_xl target (invoked via `cmake -P`).
#
# Runs the million-prefix pipeline bench end-to-end at the xl tier —
# streamed generation of 1M+ prefixes across ~30k ASes, GeoIP construction,
# the streamed route feed with convergence checkpoints, and viewpoint FIB
# compilation — then validates the BENCH json it wrote (including the
# rss_per_route and fib.full_build_seconds/patch_seconds fields) with
# `JSON_CHECK --bench`.  The bench itself enforces the streaming memory
# guarantee (peak RSS <= 1.2x steady + slack) and exits non-zero on breach.
#
# Minutes of wall-clock and tens of GB of RAM: only registered when the
# VNS_BIG_TESTS CMake option is ON.
#
# Expected -D inputs: BENCH_DIR, JSON_CHECK, WORK_DIR.

foreach(var BENCH_DIR JSON_CHECK WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "bench_smoke_xl.cmake: missing -D${var}")
  endif()
endforeach()

file(MAKE_DIRECTORY "${WORK_DIR}")

set(binary "${BENCH_DIR}/bench_xl_pipeline")
if(NOT EXISTS "${binary}")
  message(FATAL_ERROR "bench_smoke_xl: missing binary ${binary}")
endif()

set(json_artifact "${WORK_DIR}/BENCH_xl_pipeline.json")
file(REMOVE "${json_artifact}")

message(STATUS "bench_smoke_xl: bench_xl_pipeline --scale xl --json --seed 7")
execute_process(
  COMMAND "${binary}" --scale xl --json --seed 7
  WORKING_DIRECTORY "${WORK_DIR}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE run_out
  ERROR_VARIABLE run_out)
message(STATUS "${run_out}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "bench_smoke_xl: bench_xl_pipeline exited ${rc}")
endif()

if(NOT EXISTS "${json_artifact}")
  message(FATAL_ERROR "bench_smoke_xl: bench did not write ${json_artifact}")
endif()
execute_process(
  COMMAND "${JSON_CHECK}" --bench "${json_artifact}"
  RESULT_VARIABLE check_rc
  OUTPUT_VARIABLE check_out
  ERROR_VARIABLE check_out)
if(NOT check_rc EQUAL 0)
  message(FATAL_ERROR "bench_smoke_xl: invalid artifact ${json_artifact}\n${check_out}")
endif()
message(STATUS "bench_smoke_xl: passed")
