// Strict JSON / JSONL validator for the machine-readable artifacts the
// benches emit (BENCH_*.json, TRACE_*.jsonl).  The bench_smoke ctest target
// runs every bench with `--small --json --trace` and feeds the outputs
// through this tool, so malformed emission fails CI instead of silently
// rotting downstream tooling.
//
//   json_check FILE...            each file must be exactly one JSON value
//   json_check --jsonl FILE...    each non-empty line must be one JSON value
//   json_check --bench FILE...    JSON value that must also carry the bench
//                                 record's run-metadata header and
//                                 memory-accounting fields (peak RSS +
//                                 AttrTable intern stats)
//   json_check --bench --require-slo FILE...
//                                 additionally require the serving-mode
//                                 "slo" block (bench_slo_serving's contract)
//
// Exit 0 when everything parses; 1 with `file:offset: message` on the first
// error per file.  Recursive-descent per RFC 8259: objects, arrays, strings
// with escape validation, numbers, true/false/null.  No extensions — a
// trailing comma, bare NaN or unescaped control character is an error.
#include <cctype>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& message) {
    if (error.empty()) error = message;
    return false;
  }

  void skip_ws() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' ||
                                 text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) {
      return fail("expected '" + std::string{word} + "'");
    }
    pos += word.size();
    return true;
  }

  bool string() {
    if (pos >= text.size() || text[pos] != '"') return fail("expected '\"'");
    ++pos;
    while (pos < text.size()) {
      const unsigned char c = static_cast<unsigned char>(text[pos]);
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c < 0x20) return fail("unescaped control character in string");
      if (c == '\\') {
        ++pos;
        if (pos >= text.size()) return fail("truncated escape");
        const char e = text[pos];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos + static_cast<std::size_t>(i) >= text.size() ||
                !std::isxdigit(static_cast<unsigned char>(text[pos + static_cast<std::size_t>(i)]))) {
              return fail("bad \\u escape");
            }
          }
          pos += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
                   e != 'n' && e != 'r' && e != 't') {
          return fail(std::string{"bad escape '\\"} + e + "'");
        }
      }
      ++pos;
    }
    return fail("unterminated string");
  }

  bool number() {
    const std::size_t start = pos;
    if (pos < text.size() && text[pos] == '-') ++pos;
    if (pos >= text.size() || !std::isdigit(static_cast<unsigned char>(text[pos]))) {
      return fail("bad number");
    }
    if (text[pos] == '0') {
      ++pos;
    } else {
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    }
    if (pos < text.size() && text[pos] == '.') {
      ++pos;
      if (pos >= text.size() || !std::isdigit(static_cast<unsigned char>(text[pos]))) {
        return fail("bad fraction");
      }
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (pos >= text.size() || !std::isdigit(static_cast<unsigned char>(text[pos]))) {
        return fail("bad exponent");
      }
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    }
    return pos > start;
  }

  bool value(int depth) {
    if (depth > 256) return fail("nesting too deep");
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    switch (text[pos]) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object(int depth) {
    ++pos;  // '{'
    skip_ws();
    if (pos < text.size() && text[pos] == '}') {
      ++pos;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (pos >= text.size() || text[pos] != ':') return fail("expected ':'");
      ++pos;
      if (!value(depth + 1)) return false;
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(int depth) {
    ++pos;  // '['
    skip_ws();
    if (pos < text.size() && text[pos] == ']') {
      ++pos;
      return true;
    }
    while (true) {
      if (!value(depth + 1)) return false;
      skip_ws();
      if (pos < text.size() && text[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  /// Exactly one JSON value followed by whitespace only.
  bool document() {
    if (!value(0)) return false;
    skip_ws();
    if (pos != text.size()) return fail("trailing garbage after JSON value");
    return true;
  }
};

bool check_json(const std::string& name, std::string_view content) {
  Parser parser{content};
  if (parser.document()) return true;
  std::cerr << name << ':' << parser.pos << ": " << parser.error << '\n';
  return false;
}

/// Every key a BENCH_*.json "memory" object must carry (bench_common.hpp
/// emits them unconditionally; a missing key means the emission regressed).
constexpr std::string_view kBenchMemoryKeys[] = {
    "memory",          "peak_rss_kb",      "attr_unique_live",
    "attr_peak_unique", "attr_live_refs",  "attr_intern_calls",
    "attr_intern_hits", "attr_bytes_allocated", "attr_bytes_requested",
    "attr_dedup_ratio",
    // Per-route memory accounting (PR 7: RSS divided by installed routes).
    "rss_per_route", "routes",
    // Compiled data-plane stats (nested "fib" object), split into full
    // compiles vs. incremental RIB-delta patches since PR 7.
    "fib", "entries", "spill_tables", "bytes", "rebuilds", "full_rebuilds",
    "patches", "slots_touched", "build_seconds",
    // build_seconds decomposition (PR 10): wall-clock spent in full
    // DIR-16-8-8 compiles vs. incremental patches, so regressions in either
    // path are visible separately.
    "full_build_seconds", "patch_seconds",
    // Sharded convergence engine stats (the "convergence" object).
    "convergence", "runs", "messages", "batches", "messages_per_sec",
    "shard_limit", "shard_occupancy_mean", "shard_occupancy_max",
    "max_batch_messages",
    // Run-identity header (the "meta" object, PR 8): scale preset, thread
    // count, seed and an ISO-8601 write timestamp.
    "meta", "scale", "seed", "timestamp",
    // Traffic-engineering accounting (the "traffic" object, DESIGN §14):
    // emitted by every bench, all-zero when the run carried no load.
    "traffic", "assignments", "links_loaded", "util_p50", "util_max",
    "offloaded_flows", "rejected_flows", "wan_bytes_saved",
};

/// Keys the serving-mode "slo" block must carry (--require-slo; enforced
/// only for bench_slo_serving, whose record contract includes it).
constexpr std::string_view kBenchSloKeys[] = {
    "slo",          "steady",        "converging",        "freshness_lag",
    "p50_ns",       "p99_ns",        "stale_served",      "fib_patches",
    "fib_full_rebuilds", "max_freshness_lag_batches",
};

bool check_bench_record(const std::string& name, std::string_view content,
                        bool require_slo) {
  if (!check_json(name, content)) return false;
  for (const std::string_view key : kBenchMemoryKeys) {
    const std::string quoted = '"' + std::string{key} + '"';
    if (content.find(quoted) == std::string_view::npos) {
      std::cerr << name << ": bench record missing memory field " << quoted << '\n';
      return false;
    }
  }
  if (require_slo) {
    for (const std::string_view key : kBenchSloKeys) {
      const std::string quoted = '"' + std::string{key} + '"';
      if (content.find(quoted) == std::string_view::npos) {
        std::cerr << name << ": bench record missing slo field " << quoted << '\n';
        return false;
      }
    }
  }
  return true;
}

bool check_jsonl(const std::string& name, std::string_view content) {
  std::size_t line_start = 0;
  std::size_t line_number = 1;
  bool any = false;
  while (line_start <= content.size()) {
    std::size_t line_end = content.find('\n', line_start);
    if (line_end == std::string_view::npos) line_end = content.size();
    const std::string_view line = content.substr(line_start, line_end - line_start);
    if (!line.empty()) {
      any = true;
      Parser parser{line};
      if (!parser.document()) {
        std::cerr << name << ":line " << line_number << ":" << parser.pos << ": "
                  << parser.error << '\n';
        return false;
      }
    }
    line_start = line_end + 1;
    ++line_number;
    if (line_end == content.size()) break;
  }
  if (!any) {
    std::cerr << name << ": empty JSONL file\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool jsonl = false;
  bool bench = false;
  bool require_slo = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--jsonl") {
      jsonl = true;
    } else if (arg == "--bench") {
      bench = true;
    } else if (arg == "--require-slo") {
      require_slo = true;
    } else if (arg == "--help") {
      std::cout << "usage: json_check [--jsonl|--bench [--require-slo]] FILE...\n";
      return 0;
    } else {
      files.emplace_back(arg);
    }
  }
  if (files.empty() || (jsonl && bench) || (require_slo && !bench)) {
    std::cerr << "usage: json_check [--jsonl|--bench [--require-slo]] FILE...\n";
    return 2;
  }
  bool ok = true;
  for (const auto& file : files) {
    std::ifstream in{file, std::ios::binary};
    if (!in) {
      std::cerr << file << ": cannot open\n";
      ok = false;
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string content = buffer.str();
    const bool file_ok = jsonl   ? check_jsonl(file, content)
                         : bench ? check_bench_record(file, content, require_slo)
                                 : check_json(file, content);
    ok = file_ok && ok;
  }
  return ok ? 0 : 1;
}
