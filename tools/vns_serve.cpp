// vns_serve — the serving-mode SLO harness as a standalone tool.
//
// Builds the world, streams churn into it (freshly generated or replayed
// from a recorded trace), serves resolution queries from N threads, and
// prints JSONL heartbeats plus a final `slo` summary object on stdout.
//
//   vns_serve [--scale small|paper|full] [--seed N] [--threads N]
//             [--duration S] [--qps Q] [--batches N] [--events N]
//             [--heartbeat N] [--record FILE] [--replay FILE]
//             [--dump-state FILE]
//
//   --duration S     total dwell budget in seconds, spread over the batches
//                    (pacing only; the event schedule is wall-clock free)
//   --qps Q          per-resolver probe rate (0 = unthrottled)
//   --record FILE    generate the trace, save it to FILE, then run it
//   --replay FILE    load the trace from FILE instead of generating one
//   --dump-state F   write the canonical final fabric state dump to F —
//                    byte-compare two runs to verify replay determinism
//
// Record/replay contract: the trace file and the final state dump are
// byte-identical for any --threads value; only the latency samples (wall
// clock) differ run to run.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "measure/workbench.hpp"
#include "serve/engine.hpp"
#include "serve/update_trace.hpp"
#include "util/thread_pool.hpp"

using namespace vns;

namespace {

struct ServeArgs {
  topo::InternetScale scale = topo::InternetScale::kSmall;
  std::uint64_t seed = 1;
  int threads = 0;
  double duration_s = 0.0;
  double qps = 0.0;
  std::uint64_t batches = 16;
  std::uint32_t events_per_batch = 8;
  std::uint64_t heartbeat_every = 4;
  std::string record_path;
  std::string replay_path;
  std::string dump_state_path;
};

void usage(std::ostream& out) {
  out << "usage: vns_serve [--scale small|paper|full|xl] [--seed N] [--threads N]\n"
         "                 [--duration S] [--qps Q] [--batches N] [--events N]\n"
         "                 [--heartbeat N] [--record FILE] [--replay FILE]\n"
         "                 [--dump-state FILE]\n";
}

std::optional<ServeArgs> parse(int argc, char** argv) {
  ServeArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--scale") {
      const char* tier = next();
      if (tier == nullptr) return std::nullopt;
      const auto parsed = topo::scale_from_string(tier);
      if (!parsed) {
        std::cerr << "unknown --scale '" << tier << "' (valid: small|paper|full|xl)\n";
        return std::nullopt;
      }
      args.scale = *parsed;
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      args.threads = static_cast<int>(std::strtol(v, nullptr, 10));
    } else if (arg == "--duration") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      args.duration_s = std::strtod(v, nullptr);
    } else if (arg == "--qps") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      args.qps = std::strtod(v, nullptr);
    } else if (arg == "--batches") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      args.batches = std::strtoull(v, nullptr, 10);
    } else if (arg == "--events") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      args.events_per_batch = static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--heartbeat") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      args.heartbeat_every = std::strtoull(v, nullptr, 10);
    } else if (arg == "--record") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      args.record_path = v;
    } else if (arg == "--replay") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      args.replay_path = v;
    } else if (arg == "--dump-state") {
      const char* v = next();
      if (v == nullptr) return std::nullopt;
      args.dump_state_path = v;
    } else if (arg == "--help") {
      usage(std::cout);
      std::exit(0);
    } else {
      return std::nullopt;
    }
  }
  if (!args.record_path.empty() && !args.replay_path.empty()) return std::nullopt;
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse(argc, argv);
  if (!args) {
    usage(std::cerr);
    return 2;
  }

  auto config = measure::WorkbenchConfig::at_scale(args->scale, args->seed);
  config.threads = args->threads;
  auto world = measure::Workbench::build(config);
  world->vns().set_geo_routing(true);

  serve::UpdateTrace trace;
  if (!args->replay_path.empty()) {
    std::ifstream in{args->replay_path};
    if (!in) {
      std::cerr << "vns_serve: cannot open " << args->replay_path << "\n";
      return 1;
    }
    auto loaded = serve::load_trace(in);
    if (!loaded) {
      std::cerr << "vns_serve: malformed trace " << args->replay_path << "\n";
      return 1;
    }
    trace = std::move(*loaded);
  } else {
    serve::GenerateConfig gen;
    gen.seed = args->seed;
    gen.scale = std::string{topo::to_string(args->scale)};
    gen.batches = args->batches;
    gen.events_per_batch = args->events_per_batch;
    trace = serve::generate_trace(world->vns(), gen);
    if (!args->record_path.empty()) {
      std::ofstream out{args->record_path};
      if (!out) {
        std::cerr << "vns_serve: cannot write " << args->record_path << "\n";
        return 1;
      }
      serve::save_trace(trace, out);
      std::cerr << "vns_serve: recorded " << trace.events.size() << " events to "
                << args->record_path << "\n";
    }
  }

  serve::EngineConfig engine_config;
  engine_config.resolver_threads = util::resolve_thread_count(args->threads);
  engine_config.duration_s = args->duration_s;
  engine_config.qps = args->qps;
  engine_config.seed = args->seed;
  engine_config.heartbeat_every = args->heartbeat_every;
  engine_config.heartbeat_out = &std::cout;

  serve::Engine engine(world->vns(), engine_config);
  const serve::SloReport report = engine.run(trace);
  std::cout << "{\"type\":\"slo\",\"slo\":" << report.to_json() << "}\n";

  if (!args->dump_state_path.empty()) {
    std::ofstream out{args->dump_state_path};
    if (!out) {
      std::cerr << "vns_serve: cannot write " << args->dump_state_path << "\n";
      return 1;
    }
    out << serve::dump_fabric_state(world->vns().fabric());
    std::cerr << "vns_serve: wrote state dump to " << args->dump_state_path << "\n";
  }
  return 0;
}
