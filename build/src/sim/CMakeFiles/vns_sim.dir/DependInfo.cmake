
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/diurnal.cpp" "src/sim/CMakeFiles/vns_sim.dir/diurnal.cpp.o" "gcc" "src/sim/CMakeFiles/vns_sim.dir/diurnal.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/vns_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/vns_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/gilbert_elliott.cpp" "src/sim/CMakeFiles/vns_sim.dir/gilbert_elliott.cpp.o" "gcc" "src/sim/CMakeFiles/vns_sim.dir/gilbert_elliott.cpp.o.d"
  "/root/repo/src/sim/path_model.cpp" "src/sim/CMakeFiles/vns_sim.dir/path_model.cpp.o" "gcc" "src/sim/CMakeFiles/vns_sim.dir/path_model.cpp.o.d"
  "/root/repo/src/sim/time.cpp" "src/sim/CMakeFiles/vns_sim.dir/time.cpp.o" "gcc" "src/sim/CMakeFiles/vns_sim.dir/time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
