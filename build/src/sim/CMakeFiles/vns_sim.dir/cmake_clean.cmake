file(REMOVE_RECURSE
  "CMakeFiles/vns_sim.dir/diurnal.cpp.o"
  "CMakeFiles/vns_sim.dir/diurnal.cpp.o.d"
  "CMakeFiles/vns_sim.dir/event_queue.cpp.o"
  "CMakeFiles/vns_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/vns_sim.dir/gilbert_elliott.cpp.o"
  "CMakeFiles/vns_sim.dir/gilbert_elliott.cpp.o.d"
  "CMakeFiles/vns_sim.dir/path_model.cpp.o"
  "CMakeFiles/vns_sim.dir/path_model.cpp.o.d"
  "CMakeFiles/vns_sim.dir/time.cpp.o"
  "CMakeFiles/vns_sim.dir/time.cpp.o.d"
  "libvns_sim.a"
  "libvns_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vns_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
