file(REMOVE_RECURSE
  "libvns_sim.a"
)
