# Empty dependencies file for vns_sim.
# This may be replaced when dependencies are built.
