file(REMOVE_RECURSE
  "CMakeFiles/vns_net.dir/ip.cpp.o"
  "CMakeFiles/vns_net.dir/ip.cpp.o.d"
  "libvns_net.a"
  "libvns_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vns_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
