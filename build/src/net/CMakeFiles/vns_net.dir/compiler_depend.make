# Empty compiler generated dependencies file for vns_net.
# This may be replaced when dependencies are built.
