file(REMOVE_RECURSE
  "libvns_net.a"
)
