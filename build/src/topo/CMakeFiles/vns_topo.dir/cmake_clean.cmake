file(REMOVE_RECURSE
  "CMakeFiles/vns_topo.dir/delay.cpp.o"
  "CMakeFiles/vns_topo.dir/delay.cpp.o.d"
  "CMakeFiles/vns_topo.dir/internet.cpp.o"
  "CMakeFiles/vns_topo.dir/internet.cpp.o.d"
  "CMakeFiles/vns_topo.dir/segments.cpp.o"
  "CMakeFiles/vns_topo.dir/segments.cpp.o.d"
  "libvns_topo.a"
  "libvns_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vns_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
