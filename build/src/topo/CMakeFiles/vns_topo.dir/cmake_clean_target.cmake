file(REMOVE_RECURSE
  "libvns_topo.a"
)
