# Empty dependencies file for vns_topo.
# This may be replaced when dependencies are built.
