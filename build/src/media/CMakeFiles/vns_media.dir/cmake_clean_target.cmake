file(REMOVE_RECURSE
  "libvns_media.a"
)
