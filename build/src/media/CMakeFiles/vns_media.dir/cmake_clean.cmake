file(REMOVE_RECURSE
  "CMakeFiles/vns_media.dir/quality.cpp.o"
  "CMakeFiles/vns_media.dir/quality.cpp.o.d"
  "CMakeFiles/vns_media.dir/repair.cpp.o"
  "CMakeFiles/vns_media.dir/repair.cpp.o.d"
  "CMakeFiles/vns_media.dir/session.cpp.o"
  "CMakeFiles/vns_media.dir/session.cpp.o.d"
  "CMakeFiles/vns_media.dir/video.cpp.o"
  "CMakeFiles/vns_media.dir/video.cpp.o.d"
  "libvns_media.a"
  "libvns_media.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vns_media.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
