# Empty dependencies file for vns_media.
# This may be replaced when dependencies are built.
