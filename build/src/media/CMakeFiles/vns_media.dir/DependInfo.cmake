
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/media/quality.cpp" "src/media/CMakeFiles/vns_media.dir/quality.cpp.o" "gcc" "src/media/CMakeFiles/vns_media.dir/quality.cpp.o.d"
  "/root/repo/src/media/repair.cpp" "src/media/CMakeFiles/vns_media.dir/repair.cpp.o" "gcc" "src/media/CMakeFiles/vns_media.dir/repair.cpp.o.d"
  "/root/repo/src/media/session.cpp" "src/media/CMakeFiles/vns_media.dir/session.cpp.o" "gcc" "src/media/CMakeFiles/vns_media.dir/session.cpp.o.d"
  "/root/repo/src/media/video.cpp" "src/media/CMakeFiles/vns_media.dir/video.cpp.o" "gcc" "src/media/CMakeFiles/vns_media.dir/video.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/vns_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
