file(REMOVE_RECURSE
  "libvns_core.a"
)
