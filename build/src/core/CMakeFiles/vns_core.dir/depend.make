# Empty dependencies file for vns_core.
# This may be replaced when dependencies are built.
