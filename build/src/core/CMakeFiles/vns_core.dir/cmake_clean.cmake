file(REMOVE_RECURSE
  "CMakeFiles/vns_core.dir/economics.cpp.o"
  "CMakeFiles/vns_core.dir/economics.cpp.o.d"
  "CMakeFiles/vns_core.dir/vns_network.cpp.o"
  "CMakeFiles/vns_core.dir/vns_network.cpp.o.d"
  "libvns_core.a"
  "libvns_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vns_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
