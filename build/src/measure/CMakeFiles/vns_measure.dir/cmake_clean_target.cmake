file(REMOVE_RECURSE
  "libvns_measure.a"
)
