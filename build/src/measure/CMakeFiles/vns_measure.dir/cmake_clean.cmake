file(REMOVE_RECURSE
  "CMakeFiles/vns_measure.dir/prober.cpp.o"
  "CMakeFiles/vns_measure.dir/prober.cpp.o.d"
  "CMakeFiles/vns_measure.dir/workbench.cpp.o"
  "CMakeFiles/vns_measure.dir/workbench.cpp.o.d"
  "libvns_measure.a"
  "libvns_measure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vns_measure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
