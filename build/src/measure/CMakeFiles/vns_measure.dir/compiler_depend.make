# Empty compiler generated dependencies file for vns_measure.
# This may be replaced when dependencies are built.
