# Empty dependencies file for vns_util.
# This may be replaced when dependencies are built.
