file(REMOVE_RECURSE
  "CMakeFiles/vns_util.dir/rng.cpp.o"
  "CMakeFiles/vns_util.dir/rng.cpp.o.d"
  "CMakeFiles/vns_util.dir/stats.cpp.o"
  "CMakeFiles/vns_util.dir/stats.cpp.o.d"
  "CMakeFiles/vns_util.dir/table.cpp.o"
  "CMakeFiles/vns_util.dir/table.cpp.o.d"
  "libvns_util.a"
  "libvns_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vns_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
