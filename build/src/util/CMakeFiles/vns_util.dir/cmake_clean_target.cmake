file(REMOVE_RECURSE
  "libvns_util.a"
)
