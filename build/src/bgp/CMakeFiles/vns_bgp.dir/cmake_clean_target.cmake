file(REMOVE_RECURSE
  "libvns_bgp.a"
)
