file(REMOVE_RECURSE
  "CMakeFiles/vns_bgp.dir/decision.cpp.o"
  "CMakeFiles/vns_bgp.dir/decision.cpp.o.d"
  "CMakeFiles/vns_bgp.dir/fabric.cpp.o"
  "CMakeFiles/vns_bgp.dir/fabric.cpp.o.d"
  "CMakeFiles/vns_bgp.dir/igp.cpp.o"
  "CMakeFiles/vns_bgp.dir/igp.cpp.o.d"
  "CMakeFiles/vns_bgp.dir/router.cpp.o"
  "CMakeFiles/vns_bgp.dir/router.cpp.o.d"
  "CMakeFiles/vns_bgp.dir/types.cpp.o"
  "CMakeFiles/vns_bgp.dir/types.cpp.o.d"
  "libvns_bgp.a"
  "libvns_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vns_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
