
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/decision.cpp" "src/bgp/CMakeFiles/vns_bgp.dir/decision.cpp.o" "gcc" "src/bgp/CMakeFiles/vns_bgp.dir/decision.cpp.o.d"
  "/root/repo/src/bgp/fabric.cpp" "src/bgp/CMakeFiles/vns_bgp.dir/fabric.cpp.o" "gcc" "src/bgp/CMakeFiles/vns_bgp.dir/fabric.cpp.o.d"
  "/root/repo/src/bgp/igp.cpp" "src/bgp/CMakeFiles/vns_bgp.dir/igp.cpp.o" "gcc" "src/bgp/CMakeFiles/vns_bgp.dir/igp.cpp.o.d"
  "/root/repo/src/bgp/router.cpp" "src/bgp/CMakeFiles/vns_bgp.dir/router.cpp.o" "gcc" "src/bgp/CMakeFiles/vns_bgp.dir/router.cpp.o.d"
  "/root/repo/src/bgp/types.cpp" "src/bgp/CMakeFiles/vns_bgp.dir/types.cpp.o" "gcc" "src/bgp/CMakeFiles/vns_bgp.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/vns_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
