# Empty compiler generated dependencies file for vns_bgp.
# This may be replaced when dependencies are built.
