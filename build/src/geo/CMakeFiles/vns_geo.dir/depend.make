# Empty dependencies file for vns_geo.
# This may be replaced when dependencies are built.
