file(REMOVE_RECURSE
  "libvns_geo.a"
)
