file(REMOVE_RECURSE
  "CMakeFiles/vns_geo.dir/cities.cpp.o"
  "CMakeFiles/vns_geo.dir/cities.cpp.o.d"
  "CMakeFiles/vns_geo.dir/geo.cpp.o"
  "CMakeFiles/vns_geo.dir/geo.cpp.o.d"
  "CMakeFiles/vns_geo.dir/geoip.cpp.o"
  "CMakeFiles/vns_geo.dir/geoip.cpp.o.d"
  "libvns_geo.a"
  "libvns_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vns_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
