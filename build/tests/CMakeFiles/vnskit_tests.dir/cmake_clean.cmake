file(REMOVE_RECURSE
  "CMakeFiles/vnskit_tests.dir/test_bgp.cpp.o"
  "CMakeFiles/vnskit_tests.dir/test_bgp.cpp.o.d"
  "CMakeFiles/vnskit_tests.dir/test_core.cpp.o"
  "CMakeFiles/vnskit_tests.dir/test_core.cpp.o.d"
  "CMakeFiles/vnskit_tests.dir/test_extensions.cpp.o"
  "CMakeFiles/vnskit_tests.dir/test_extensions.cpp.o.d"
  "CMakeFiles/vnskit_tests.dir/test_geo.cpp.o"
  "CMakeFiles/vnskit_tests.dir/test_geo.cpp.o.d"
  "CMakeFiles/vnskit_tests.dir/test_integration.cpp.o"
  "CMakeFiles/vnskit_tests.dir/test_integration.cpp.o.d"
  "CMakeFiles/vnskit_tests.dir/test_measure.cpp.o"
  "CMakeFiles/vnskit_tests.dir/test_measure.cpp.o.d"
  "CMakeFiles/vnskit_tests.dir/test_media.cpp.o"
  "CMakeFiles/vnskit_tests.dir/test_media.cpp.o.d"
  "CMakeFiles/vnskit_tests.dir/test_net.cpp.o"
  "CMakeFiles/vnskit_tests.dir/test_net.cpp.o.d"
  "CMakeFiles/vnskit_tests.dir/test_robustness.cpp.o"
  "CMakeFiles/vnskit_tests.dir/test_robustness.cpp.o.d"
  "CMakeFiles/vnskit_tests.dir/test_sim.cpp.o"
  "CMakeFiles/vnskit_tests.dir/test_sim.cpp.o.d"
  "CMakeFiles/vnskit_tests.dir/test_topo.cpp.o"
  "CMakeFiles/vnskit_tests.dir/test_topo.cpp.o.d"
  "CMakeFiles/vnskit_tests.dir/test_units.cpp.o"
  "CMakeFiles/vnskit_tests.dir/test_units.cpp.o.d"
  "CMakeFiles/vnskit_tests.dir/test_util.cpp.o"
  "CMakeFiles/vnskit_tests.dir/test_util.cpp.o.d"
  "vnskit_tests"
  "vnskit_tests.pdb"
  "vnskit_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vnskit_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
