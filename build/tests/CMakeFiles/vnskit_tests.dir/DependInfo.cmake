
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_bgp.cpp" "tests/CMakeFiles/vnskit_tests.dir/test_bgp.cpp.o" "gcc" "tests/CMakeFiles/vnskit_tests.dir/test_bgp.cpp.o.d"
  "/root/repo/tests/test_core.cpp" "tests/CMakeFiles/vnskit_tests.dir/test_core.cpp.o" "gcc" "tests/CMakeFiles/vnskit_tests.dir/test_core.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/vnskit_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/vnskit_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_geo.cpp" "tests/CMakeFiles/vnskit_tests.dir/test_geo.cpp.o" "gcc" "tests/CMakeFiles/vnskit_tests.dir/test_geo.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/vnskit_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/vnskit_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_measure.cpp" "tests/CMakeFiles/vnskit_tests.dir/test_measure.cpp.o" "gcc" "tests/CMakeFiles/vnskit_tests.dir/test_measure.cpp.o.d"
  "/root/repo/tests/test_media.cpp" "tests/CMakeFiles/vnskit_tests.dir/test_media.cpp.o" "gcc" "tests/CMakeFiles/vnskit_tests.dir/test_media.cpp.o.d"
  "/root/repo/tests/test_net.cpp" "tests/CMakeFiles/vnskit_tests.dir/test_net.cpp.o" "gcc" "tests/CMakeFiles/vnskit_tests.dir/test_net.cpp.o.d"
  "/root/repo/tests/test_robustness.cpp" "tests/CMakeFiles/vnskit_tests.dir/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/vnskit_tests.dir/test_robustness.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/vnskit_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/vnskit_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_topo.cpp" "tests/CMakeFiles/vnskit_tests.dir/test_topo.cpp.o" "gcc" "tests/CMakeFiles/vnskit_tests.dir/test_topo.cpp.o.d"
  "/root/repo/tests/test_units.cpp" "tests/CMakeFiles/vnskit_tests.dir/test_units.cpp.o" "gcc" "tests/CMakeFiles/vnskit_tests.dir/test_units.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/vnskit_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/vnskit_tests.dir/test_util.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/vns_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vns_net.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/vns_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/vns_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vns_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/vns_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vns_core.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/vns_media.dir/DependInfo.cmake"
  "/root/repo/build/src/measure/CMakeFiles/vns_measure.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
