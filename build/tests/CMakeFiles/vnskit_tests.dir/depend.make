# Empty dependencies file for vnskit_tests.
# This may be replaced when dependencies are built.
