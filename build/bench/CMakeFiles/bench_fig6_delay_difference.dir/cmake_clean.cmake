file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_delay_difference.dir/bench_fig6_delay_difference.cpp.o"
  "CMakeFiles/bench_fig6_delay_difference.dir/bench_fig6_delay_difference.cpp.o.d"
  "bench_fig6_delay_difference"
  "bench_fig6_delay_difference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_delay_difference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
