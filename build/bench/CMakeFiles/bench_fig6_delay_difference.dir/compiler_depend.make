# Empty compiler generated dependencies file for bench_fig6_delay_difference.
# This may be replaced when dependencies are built.
