
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig6_delay_difference.cpp" "bench/CMakeFiles/bench_fig6_delay_difference.dir/bench_fig6_delay_difference.cpp.o" "gcc" "bench/CMakeFiles/bench_fig6_delay_difference.dir/bench_fig6_delay_difference.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/measure/CMakeFiles/vns_measure.dir/DependInfo.cmake"
  "/root/repo/build/src/media/CMakeFiles/vns_media.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vns_core.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/vns_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vns_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/vns_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/vns_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vns_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/vns_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
