file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_diurnal.dir/bench_fig12_diurnal.cpp.o"
  "CMakeFiles/bench_fig12_diurnal.dir/bench_fig12_diurnal.cpp.o.d"
  "bench_fig12_diurnal"
  "bench_fig12_diurnal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_diurnal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
