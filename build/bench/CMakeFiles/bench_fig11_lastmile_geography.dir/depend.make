# Empty dependencies file for bench_fig11_lastmile_geography.
# This may be replaced when dependencies are built.
