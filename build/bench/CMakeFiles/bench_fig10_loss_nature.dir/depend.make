# Empty dependencies file for bench_fig10_loss_nature.
# This may be replaced when dependencies are built.
