file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_loss_nature.dir/bench_fig10_loss_nature.cpp.o"
  "CMakeFiles/bench_fig10_loss_nature.dir/bench_fig10_loss_nature.cpp.o.d"
  "bench_fig10_loss_nature"
  "bench_fig10_loss_nature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_loss_nature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
