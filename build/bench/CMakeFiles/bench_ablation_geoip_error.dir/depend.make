# Empty dependencies file for bench_ablation_geoip_error.
# This may be replaced when dependencies are built.
