# Empty compiler generated dependencies file for bench_fig4_egress_selection.
# This may be replaced when dependencies are built.
