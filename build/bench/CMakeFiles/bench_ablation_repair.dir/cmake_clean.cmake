file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_repair.dir/bench_ablation_repair.cpp.o"
  "CMakeFiles/bench_ablation_repair.dir/bench_ablation_repair.cpp.o.d"
  "bench_ablation_repair"
  "bench_ablation_repair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_repair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
