# Empty dependencies file for bench_fig9_video_loss.
# This may be replaced when dependencies are built.
