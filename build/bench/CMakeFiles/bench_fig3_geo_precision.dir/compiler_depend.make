# Empty compiler generated dependencies file for bench_fig3_geo_precision.
# This may be replaced when dependencies are built.
