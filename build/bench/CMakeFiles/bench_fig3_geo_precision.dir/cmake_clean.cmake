file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_geo_precision.dir/bench_fig3_geo_precision.cpp.o"
  "CMakeFiles/bench_fig3_geo_precision.dir/bench_fig3_geo_precision.cpp.o.d"
  "bench_fig3_geo_precision"
  "bench_fig3_geo_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_geo_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
