# Empty dependencies file for bench_fig5_neighbor_selection.
# This may be replaced when dependencies are built.
