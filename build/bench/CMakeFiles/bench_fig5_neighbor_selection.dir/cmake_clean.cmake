file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_neighbor_selection.dir/bench_fig5_neighbor_selection.cpp.o"
  "CMakeFiles/bench_fig5_neighbor_selection.dir/bench_fig5_neighbor_selection.cpp.o.d"
  "bench_fig5_neighbor_selection"
  "bench_fig5_neighbor_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_neighbor_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
