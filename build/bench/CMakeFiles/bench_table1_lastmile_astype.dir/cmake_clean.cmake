file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_lastmile_astype.dir/bench_table1_lastmile_astype.cpp.o"
  "CMakeFiles/bench_table1_lastmile_astype.dir/bench_table1_lastmile_astype.cpp.o.d"
  "bench_table1_lastmile_astype"
  "bench_table1_lastmile_astype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_lastmile_astype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
