# Empty compiler generated dependencies file for bench_table1_lastmile_astype.
# This may be replaced when dependencies are built.
