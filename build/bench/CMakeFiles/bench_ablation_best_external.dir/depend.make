# Empty dependencies file for bench_ablation_best_external.
# This may be replaced when dependencies are built.
