file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_best_external.dir/bench_ablation_best_external.cpp.o"
  "CMakeFiles/bench_ablation_best_external.dir/bench_ablation_best_external.cpp.o.d"
  "bench_ablation_best_external"
  "bench_ablation_best_external.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_best_external.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
