# Empty dependencies file for bench_ablation_overrides.
# This may be replaced when dependencies are built.
