file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_overrides.dir/bench_ablation_overrides.cpp.o"
  "CMakeFiles/bench_ablation_overrides.dir/bench_ablation_overrides.cpp.o.d"
  "bench_ablation_overrides"
  "bench_ablation_overrides.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_overrides.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
