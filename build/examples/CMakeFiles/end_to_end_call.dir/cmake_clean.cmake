file(REMOVE_RECURSE
  "CMakeFiles/end_to_end_call.dir/end_to_end_call.cpp.o"
  "CMakeFiles/end_to_end_call.dir/end_to_end_call.cpp.o.d"
  "end_to_end_call"
  "end_to_end_call.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/end_to_end_call.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
