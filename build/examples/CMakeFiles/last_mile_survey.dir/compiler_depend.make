# Empty compiler generated dependencies file for last_mile_survey.
# This may be replaced when dependencies are built.
