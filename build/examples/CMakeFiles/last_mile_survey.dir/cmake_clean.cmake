file(REMOVE_RECURSE
  "CMakeFiles/last_mile_survey.dir/last_mile_survey.cpp.o"
  "CMakeFiles/last_mile_survey.dir/last_mile_survey.cpp.o.d"
  "last_mile_survey"
  "last_mile_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/last_mile_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
